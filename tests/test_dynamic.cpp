// Unit tests for the section-3.3 maintenance policy (node failures).
#include <gtest/gtest.h>

#include <algorithm>

#include "khop/cds/cds.hpp"
#include "khop/cluster/validate.hpp"
#include "khop/common/error.hpp"
#include "khop/dynamic/events.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

struct Fixture {
  AdHocNetwork net;
  Clustering clustering;
  Backbone backbone;

  explicit Fixture(std::uint64_t seed, Hops k, std::size_t n = 100) {
    GeneratorConfig cfg;
    cfg.num_nodes = n;
    Rng rng(seed);
    net = generate_network(cfg, rng);
    clustering = khop_clustering(net.graph, k);
    backbone = build_backbone(net.graph, clustering, Pipeline::kAcLmst);
  }

  NodeId find_node(FailureClass cls) const {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (classify_failure(clustering, backbone, v) == cls) return v;
    }
    return kInvalidNode;
  }
};

TEST(Classify, RolesMatchBackbone) {
  const Fixture f(1101, 2);
  for (NodeId h : f.backbone.heads) {
    EXPECT_EQ(classify_failure(f.clustering, f.backbone, h),
              FailureClass::kClusterhead);
  }
  for (NodeId g : f.backbone.gateways) {
    EXPECT_EQ(classify_failure(f.clustering, f.backbone, g),
              FailureClass::kGateway);
  }
}

TEST(Repair, PlainMemberFailureKeepsCds) {
  const Fixture f(1102, 2);
  const NodeId victim = f.find_node(FailureClass::kPlainMember);
  ASSERT_NE(victim, kInvalidNode);
  const auto rep = handle_node_failure(f.net.graph, f.clustering, f.backbone,
                                       Pipeline::kAcLmst, victim);
  if (!rep.remainder_connected) GTEST_SKIP() << "victim was a cut vertex";

  EXPECT_EQ(rep.failure_class, FailureClass::kPlainMember);
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
  // The CDS is untouched: same heads and gateways modulo renumbering.
  EXPECT_EQ(rep.backbone.heads.size(), f.backbone.heads.size());
  EXPECT_EQ(rep.backbone.gateways.size(), f.backbone.gateways.size());
  EXPECT_EQ(rep.orphaned_members, 0u);
  EXPECT_EQ(rep.new_heads, 0u);
}

TEST(Repair, GatewayFailureRebuildsValidBackbone) {
  const Fixture f(1103, 2);
  const NodeId victim = f.find_node(FailureClass::kGateway);
  ASSERT_NE(victim, kInvalidNode);
  const auto rep = handle_node_failure(f.net.graph, f.clustering, f.backbone,
                                       Pipeline::kAcLmst, victim);
  if (!rep.remainder_connected) GTEST_SKIP() << "victim was a cut vertex";

  EXPECT_EQ(rep.failure_class, FailureClass::kGateway);
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
  // Clustering is preserved: same number of heads, no orphans.
  EXPECT_EQ(rep.clustering.heads.size(), f.clustering.heads.size());
  EXPECT_EQ(rep.new_heads, 0u);
  // At least one head's links used the dead gateway.
  EXPECT_GE(rep.affected_heads, 1u);
}

TEST(Repair, ClusterheadFailureReclustersOrphans) {
  const Fixture f(1104, 2);
  const NodeId victim = f.find_node(FailureClass::kClusterhead);
  ASSERT_NE(victim, kInvalidNode);
  const std::size_t cluster_size =
      f.clustering
          .cluster_members(f.clustering.cluster_of[victim])
          .size();
  const auto rep = handle_node_failure(f.net.graph, f.clustering, f.backbone,
                                       Pipeline::kAcLmst, victim);
  if (!rep.remainder_connected) GTEST_SKIP() << "victim was a cut vertex";

  EXPECT_EQ(rep.failure_class, FailureClass::kClusterhead);
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
  EXPECT_EQ(rep.orphaned_members, cluster_size - 1);
  EXPECT_EQ(rep.preserved_heads, f.clustering.heads.size() - 1);
  // Every orphan found a home: total membership stays exhaustive.
  for (NodeId v = 0; v < rep.remainder.graph.num_nodes(); ++v) {
    EXPECT_NE(rep.clustering.head_of[v], kInvalidNode);
  }
}

TEST(Repair, RepairedDominationMostlyHolds) {
  // After a head failure the repair re-dominates every node (orphans join a
  // surviving head within k or elect new heads).
  const Fixture f(1105, 2);
  const NodeId victim = f.find_node(FailureClass::kClusterhead);
  ASSERT_NE(victim, kInvalidNode);
  const auto rep = handle_node_failure(f.net.graph, f.clustering, f.backbone,
                                       Pipeline::kAcLmst, victim);
  if (!rep.remainder_connected) GTEST_SKIP();
  for (NodeId v = 0; v < rep.remainder.graph.num_nodes(); ++v) {
    EXPECT_LE(rep.clustering.dist_to_head[v], rep.clustering.k);
  }
}

TEST(Repair, AllFailureClassesAcrossManyNodes) {
  const Fixture f(1106, 2, 80);
  std::size_t attempted = 0;
  for (NodeId v = 0; v < f.net.num_nodes() && attempted < 20; ++v) {
    const auto rep = handle_node_failure(
        f.net.graph, f.clustering, f.backbone, Pipeline::kAcLmst, v);
    if (!rep.remainder_connected) continue;
    ++attempted;
    EXPECT_TRUE(rep.validation_error.empty())
        << "victim " << v << ": " << rep.validation_error;
  }
  EXPECT_GE(attempted, 10u);
}

TEST(Repair, DisconnectingFailureIsReported) {
  // Path graph: the middle node is a cut vertex.
  const Graph g = Graph::from_edges(
      3, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}});
  const Clustering c = khop_clustering(g, 1);
  const Backbone b = build_backbone(g, c, Pipeline::kAcLmst);
  const auto rep = handle_node_failure(g, c, b, Pipeline::kAcLmst, 1);
  EXPECT_FALSE(rep.remainder_connected);
  EXPECT_EQ(rep.num_components, 2u);
  // The repair still runs: both singleton components end up headed.
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
  EXPECT_EQ(rep.clustering.heads.size(), 2u);
  for (NodeId v = 0; v < rep.remainder.graph.num_nodes(); ++v) {
    EXPECT_EQ(rep.clustering.dist_to_head[v], 0u);
  }
}

TEST(Repair, PartitionRepairsEachComponent) {
  // Two 5-node paths bridged by node 10; k = 2. Removing the bridge
  // partitions the remainder into two components, each of which must keep a
  // valid dominated clustering and backbone.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < 5; ++v) {
    edges.push_back({v, v + 1});
    edges.push_back({static_cast<NodeId>(5 + v), static_cast<NodeId>(6 + v)});
  }
  edges.push_back({4, 10});
  edges.push_back({10, 5});
  const Graph g = Graph::from_edges(11, edges);
  const Clustering c = khop_clustering(g, 2);
  const Backbone b = build_backbone(g, c, Pipeline::kAcLmst);

  const auto rep = handle_node_failure(g, c, b, Pipeline::kAcLmst, 10);
  EXPECT_FALSE(rep.remainder_connected);
  EXPECT_EQ(rep.num_components, 2u);
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
  // Every survivor is dominated within its own component.
  ASSERT_EQ(rep.remainder.graph.num_nodes(), 10u);
  for (NodeId v = 0; v < 10; ++v) {
    const NodeId h = rep.clustering.head_of[v];
    ASSERT_NE(h, kInvalidNode);
    EXPECT_NE(rep.clustering.dist_to_head[v], kUnreachable);
    // Heads stay on the member's side of the cut (ids 0-4 vs 5-9 map to the
    // same split in remainder ids because the victim had the largest id).
    EXPECT_EQ(h < 5, v < 5);
  }
}

TEST(Repair, RejectsBadVictim) {
  const Fixture f(1107, 1, 50);
  EXPECT_THROW(handle_node_failure(f.net.graph, f.clustering, f.backbone,
                                   Pipeline::kAcLmst,
                                   static_cast<NodeId>(9999)),
               InvalidArgument);
}

}  // namespace
}  // namespace khop
