// Unit tests for network generation, mobility and energy models.
#include <gtest/gtest.h>

#include "khop/common/error.hpp"
#include "khop/geom/degree_calibration.hpp"
#include "khop/graph/components.hpp"
#include "khop/graph/metrics.hpp"
#include "khop/net/energy.hpp"
#include "khop/net/generator.hpp"
#include "khop/net/mobility.hpp"

namespace khop {
namespace {

TEST(Generator, ProducesConnectedNetwork) {
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  cfg.target_degree = 6.0;
  Rng rng(101);
  const AdHocNetwork net = generate_network(cfg, rng);
  EXPECT_TRUE(is_connected(net.graph));
  EXPECT_EQ(net.positions.size(), net.graph.num_nodes());
  EXPECT_EQ(net.requested_nodes, 100u);
}

TEST(Generator, IsDeterministic) {
  GeneratorConfig cfg;
  cfg.num_nodes = 60;
  Rng a(7), b(7);
  const AdHocNetwork n1 = generate_network(cfg, a);
  const AdHocNetwork n2 = generate_network(cfg, b);
  EXPECT_EQ(n1.positions, n2.positions);
  EXPECT_EQ(n1.radius, n2.radius);
  EXPECT_EQ(n1.graph.edge_list(), n2.graph.edge_list());
}

TEST(Generator, CalibratedDegreeNearTarget) {
  GeneratorConfig cfg;
  cfg.num_nodes = 150;
  cfg.target_degree = 10.0;
  Rng rng(55);
  double mean = 0.0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    mean += degree_stats(generate_network(cfg, rng).graph).mean;
  }
  EXPECT_NEAR(mean / reps, 10.0, 0.8);
}

TEST(Generator, ExplicitRadiusWinsOverDegree) {
  GeneratorConfig cfg;
  cfg.num_nodes = 50;
  cfg.explicit_radius = 30.0;
  Rng rng(2);
  EXPECT_DOUBLE_EQ(generate_network(cfg, rng).radius, 30.0);
}

TEST(Generator, AnalyticModeUsesFormulaRadius) {
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  cfg.target_degree = 8.0;
  cfg.radius_mode = RadiusMode::kAnalytic;
  Rng rng(3);
  const AdHocNetwork net = generate_network(cfg, rng);
  EXPECT_DOUBLE_EQ(net.radius, analytic_radius(100, 8.0, cfg.field));
}

TEST(Generator, LccFallbackKeepsConnectedCore) {
  // A radius too small for full connectivity: the generator must fall back
  // to the largest component (still connected, fewer nodes).
  GeneratorConfig cfg;
  cfg.num_nodes = 60;
  cfg.explicit_radius = 6.0;
  cfg.max_placement_attempts = 3;
  Rng rng(9);
  const AdHocNetwork net = generate_network(cfg, rng);
  EXPECT_TRUE(is_connected(net.graph));
  EXPECT_EQ(net.connectivity, ConnectivityOutcome::kLargestComponent);
  EXPECT_LT(net.num_nodes(), 60u);
  EXPECT_EQ(net.requested_nodes, 60u);
}

TEST(Generator, ThrowsWithoutFallback) {
  GeneratorConfig cfg;
  cfg.num_nodes = 60;
  cfg.explicit_radius = 5.0;
  cfg.max_placement_attempts = 2;
  cfg.allow_lcc_fallback = false;
  Rng rng(9);
  EXPECT_THROW(generate_network(cfg, rng), NotConnected);
}

TEST(Generator, RejectsTinyNetworks) {
  GeneratorConfig cfg;
  cfg.num_nodes = 1;
  Rng rng(1);
  EXPECT_THROW(generate_network(cfg, rng), InvalidArgument);
}

TEST(Mobility, NodesStayInFieldAndMove) {
  GeneratorConfig cfg;
  cfg.num_nodes = 40;
  cfg.explicit_radius = 25.0;
  Rng rng(17);
  AdHocNetwork net = generate_network(cfg, rng);
  const auto before = net.positions;

  RandomWaypointModel model(RandomWaypointConfig{}, net.num_nodes(),
                            net.field, rng);
  for (int t = 0; t < 50; ++t) model.step(net, rng);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < net.positions.size(); ++i) {
    EXPECT_TRUE(net.field.contains(net.positions[i]));
    if (!(net.positions[i] == before[i])) ++moved;
  }
  EXPECT_GT(moved, net.positions.size() / 2);

  net.rebuild_graph();  // must not throw; degree changes with positions
}

TEST(Mobility, RejectsBadSpeeds) {
  Rng rng(1);
  EXPECT_THROW(RandomWaypointModel(RandomWaypointConfig{.min_speed = 0.0},
                                   5, Field{}, rng),
               InvalidArgument);
}

TEST(Mobility, GaussMarkovStaysInFieldAndMoves) {
  GeneratorConfig cfg;
  cfg.num_nodes = 40;
  cfg.explicit_radius = 25.0;
  Rng rng(23);
  AdHocNetwork net = generate_network(cfg, rng);
  const auto before = net.positions;

  GaussMarkovModel model(GaussMarkovConfig{}, net.num_nodes(), rng);
  for (int t = 0; t < 100; ++t) model.step(net, rng);

  std::size_t moved = 0;
  for (std::size_t i = 0; i < net.positions.size(); ++i) {
    EXPECT_TRUE(net.field.contains(net.positions[i]));
    if (!(net.positions[i] == before[i])) ++moved;
  }
  EXPECT_EQ(moved, net.positions.size());  // everyone drifts every tick
}

TEST(Mobility, GaussMarkovAlphaOneIsStraightLine) {
  // With alpha = 1 and no noise injection the heading never changes, so
  // consecutive displacement vectors are parallel (until a reflection).
  GeneratorConfig cfg;
  cfg.num_nodes = 5;
  cfg.explicit_radius = 80.0;
  Rng rng(29);
  AdHocNetwork net = generate_network(cfg, rng);
  // Center the nodes so a few ticks cannot hit a border.
  for (auto& p : net.positions) p = {50.0, 50.0};

  GaussMarkovConfig gm;
  gm.alpha = 1.0;
  gm.mean_speed = 2.0;
  GaussMarkovModel model(gm, net.num_nodes(), rng);
  const auto p0 = net.positions;
  model.step(net, rng);
  const auto p1 = net.positions;
  model.step(net, rng);
  const auto p2 = net.positions;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    const double dx1 = p1[i].x - p0[i].x, dy1 = p1[i].y - p0[i].y;
    const double dx2 = p2[i].x - p1[i].x, dy2 = p2[i].y - p1[i].y;
    EXPECT_NEAR(dx1 * dy2 - dy1 * dx2, 0.0, 1e-9);  // parallel
  }
}

TEST(Mobility, GaussMarkovRejectsBadConfig) {
  Rng rng(1);
  EXPECT_THROW(GaussMarkovModel(GaussMarkovConfig{.alpha = 1.5}, 5, rng),
               InvalidArgument);
  EXPECT_THROW(GaussMarkovModel(GaussMarkovConfig{.mean_speed = 0.0}, 5, rng),
               InvalidArgument);
}

TEST(Energy, DrainsByRole) {
  EnergyConfig cfg;
  cfg.initial = 10.0;
  cfg.member_cost = 1.0;
  cfg.gateway_cost = 2.0;
  cfg.clusterhead_cost = 5.0;
  EnergyState st(cfg, 3);
  st.apply_epoch({NodeRole::kMember, NodeRole::kGateway,
                  NodeRole::kClusterhead});
  EXPECT_DOUBLE_EQ(st.residual(0), 9.0);
  EXPECT_DOUBLE_EQ(st.residual(1), 8.0);
  EXPECT_DOUBLE_EQ(st.residual(2), 5.0);
  EXPECT_EQ(st.alive_count(), 3u);
}

TEST(Energy, ClampsAtZeroAndCountsDead) {
  EnergyConfig cfg;
  cfg.initial = 3.0;
  cfg.clusterhead_cost = 2.0;
  EnergyState st(cfg, 1);
  st.apply_epoch({NodeRole::kClusterhead});
  st.apply_epoch({NodeRole::kClusterhead});
  EXPECT_DOUBLE_EQ(st.residual(0), 0.0);
  EXPECT_FALSE(st.alive(0));
  EXPECT_EQ(st.alive_count(), 0u);
}

TEST(Energy, RejectsMismatchedRoles) {
  EnergyState st(EnergyConfig{}, 2);
  EXPECT_THROW(st.apply_epoch({NodeRole::kMember}), InvalidArgument);
}

}  // namespace
}  // namespace khop
