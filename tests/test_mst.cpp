// Unit tests for Kruskal/Prim MST over weighted virtual edges.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/common/rng.hpp"
#include "khop/graph/mst.hpp"
#include "khop/graph/union_find.hpp"

namespace khop {
namespace {

std::uint64_t total_weight(const std::vector<WeightedEdge>& edges) {
  std::uint64_t t = 0;
  for (const auto& e : edges) t += e.weight;
  return t;
}

std::vector<std::vector<WeightedEdge>> to_adjacency(
    std::size_t n, const std::vector<WeightedEdge>& edges) {
  std::vector<std::vector<WeightedEdge>> adj(n);
  for (const auto& e : edges) {
    adj[e.u].push_back(e);
    adj[e.v].push_back({e.v, e.u, e.weight});
  }
  return adj;
}

TEST(EdgeLess, OrdersByWeightThenIds) {
  EXPECT_TRUE(edge_less({0, 1, 1}, {0, 1, 2}));
  EXPECT_TRUE(edge_less({0, 1, 5}, {0, 2, 5}));
  EXPECT_TRUE(edge_less({0, 2, 5}, {1, 2, 5}));
  // Orientation must not matter.
  EXPECT_FALSE(edge_less({2, 0, 5}, {0, 2, 5}));
  EXPECT_FALSE(edge_less({0, 2, 5}, {2, 0, 5}));
}

TEST(Kruskal, TriangleDropsHeaviestEdge) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  const auto tree = kruskal_mst(3, edges);
  ASSERT_EQ(tree.size(), 2u);
  EXPECT_EQ(total_weight(tree), 3u);
}

TEST(Kruskal, SingleNodeNeedsNoEdges) {
  EXPECT_TRUE(kruskal_mst(1, {}).empty());
}

TEST(Kruskal, ThrowsOnDisconnected) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}};
  EXPECT_THROW(kruskal_mst(3, edges), NotConnected);
}

TEST(Kruskal, RejectsBadEdges) {
  EXPECT_THROW(kruskal_mst(2, {{0, 0, 1}}), InvalidArgument);
  EXPECT_THROW(kruskal_mst(2, {{0, 5, 1}}), InvalidArgument);
}

TEST(Kruskal, TieBreakIsDeterministic) {
  // All weights equal: the id-lexicographic order picks (0,1),(0,2),(0,3).
  const std::vector<WeightedEdge> edges{
      {2, 3, 7}, {0, 3, 7}, {1, 2, 7}, {0, 1, 7}, {0, 2, 7}, {1, 3, 7}};
  const auto tree = kruskal_mst(4, edges);
  ASSERT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree[0].u, 0u);
  EXPECT_EQ(tree[0].v, 1u);
  EXPECT_EQ(tree[1].u, 0u);
  EXPECT_EQ(tree[1].v, 2u);
  EXPECT_EQ(tree[2].u, 0u);
  EXPECT_EQ(tree[2].v, 3u);
}

TEST(Prim, MatchesKruskalWeightOnRandomGraphs) {
  Rng rng(31);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 3 + rng.uniform_int(20);
    // Random connected graph: a random spanning chain + extra edges.
    std::vector<WeightedEdge> edges;
    for (NodeId v = 1; v < n; ++v) {
      edges.push_back({static_cast<NodeId>(rng.uniform_int(v)), v,
                       1 + rng.uniform_int(50)});
    }
    const std::size_t extra = rng.uniform_int(2 * n);
    for (std::size_t e = 0; e < extra; ++e) {
      const auto a = static_cast<NodeId>(rng.uniform_int(n));
      const auto b = static_cast<NodeId>(rng.uniform_int(n));
      if (a != b) edges.push_back({a, b, 1 + rng.uniform_int(50)});
    }

    const auto kruskal = kruskal_mst(n, edges);
    const auto parent = prim_mst(n, to_adjacency(n, edges), 0);
    std::uint64_t prim_weight = 0;
    // Recover each parent edge's weight as the lightest parallel edge.
    for (NodeId v = 1; v < n; ++v) {
      ASSERT_NE(parent[v], kInvalidNode);
      std::uint64_t best = ~0ULL;
      for (const auto& e : edges) {
        if ((e.u == v && e.v == parent[v]) || (e.v == v && e.u == parent[v])) {
          best = std::min(best, e.weight);
        }
      }
      prim_weight += best;
    }
    EXPECT_EQ(prim_weight, total_weight(kruskal)) << "rep " << rep;
  }
}

TEST(Prim, RootHasNoParent) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 1}};
  const auto parent = prim_mst(3, to_adjacency(3, edges), 1);
  EXPECT_EQ(parent[1], kInvalidNode);
  EXPECT_EQ(parent[0], 1u);
  EXPECT_EQ(parent[2], 1u);
}

TEST(Prim, ThrowsOnDisconnected) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}};
  EXPECT_THROW(prim_mst(3, to_adjacency(3, edges), 0), NotConnected);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_EQ(uf.set_size(4), 1u);
}

}  // namespace
}  // namespace khop
