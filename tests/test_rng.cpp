// Unit tests for the deterministic PRNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "khop/common/rng.hpp"

namespace khop {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysBelowBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, SpawnIsDeterministic) {
  Rng parent(99);
  Rng a = parent.spawn(5);
  Rng b = Rng(99).spawn(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SpawnIndependentOfParentDraws) {
  Rng p1(123), p2(123);
  (void)p1();
  (void)p1();
  (void)p1();
  Rng c1 = p1.spawn(7);
  Rng c2 = p2.spawn(7);  // parent p2 has drawn nothing
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, SpawnedStreamsDiffer) {
  Rng parent(5);
  Rng a = parent.spawn(0);
  Rng b = parent.spawn(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 definition with state 0:
  // first output is 0xE220A8397B1DCDAF.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace khop
