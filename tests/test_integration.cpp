// End-to-end integration tests: full workflows spanning generation,
// clustering, backbone construction, broadcast, failure repair and the
// distributed protocol stack on one network.
#include <gtest/gtest.h>

#include "khop/cds/broadcast.hpp"
#include "khop/core/pipeline.hpp"
#include "khop/dynamic/events.hpp"
#include "khop/dynamic/rotation.hpp"
#include "khop/exp/experiment.hpp"
#include "khop/graph/components.hpp"
#include "khop/net/generator.hpp"
#include "khop/net/mobility.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"
#include "khop/sim/protocols/gateway_protocol.hpp"

namespace khop {
namespace {

TEST(Integration, FullDistributedStackEqualsCentralizedPipeline) {
  // The complete distributed story: elect heads by message passing, run
  // A-NCR + LMST gateway marking by message passing, and end up with the
  // exact backbone the one-call centralized API builds.
  GeneratorConfig cfg;
  cfg.num_nodes = 110;
  cfg.target_degree = 8.0;
  Rng rng(3001);
  const AdHocNetwork net = generate_network(cfg, rng);
  const Hops k = 2;

  const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
  const Clustering dist_clustering = run_distributed_clustering(
      net.graph, k, prio, AffiliationRule::kIdBased);
  const Backbone dist_backbone =
      run_distributed_aclmst(net.graph, dist_clustering);

  PipelineOptions opts;
  opts.k = k;
  const auto central = build_connected_clustering(net, opts);

  EXPECT_EQ(dist_clustering.heads, central.clustering.heads);
  EXPECT_EQ(dist_backbone.gateways, central.backbone.gateways);
  EXPECT_EQ(dist_backbone.virtual_links, central.backbone.virtual_links);
}

TEST(Integration, BackboneSurvivesFailureStorm) {
  // Kill ten random non-cut nodes one after another, repairing after each;
  // the backbone must stay valid throughout.
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  cfg.target_degree = 10.0;
  Rng rng(3002);
  AdHocNetwork net = generate_network(cfg, rng);
  Graph graph = net.graph;
  Clustering clustering = khop_clustering(graph, 2);
  Backbone backbone = build_backbone(graph, clustering, Pipeline::kAcLmst);

  std::size_t repairs = 0;
  for (int attempt = 0; attempt < 40 && repairs < 10; ++attempt) {
    const auto victim =
        static_cast<NodeId>(rng.uniform_int(graph.num_nodes()));
    const auto rep = handle_node_failure(graph, clustering, backbone,
                                         Pipeline::kAcLmst, victim);
    if (!rep.remainder_connected) continue;
    ++repairs;
    EXPECT_TRUE(rep.validation_error.empty())
        << "repair " << repairs << ": " << rep.validation_error;
    graph = rep.remainder.graph;
    clustering = rep.clustering;
    backbone = rep.backbone;
  }
  EXPECT_EQ(repairs, 10u);
  EXPECT_GE(graph.num_nodes(), 110u);
}

TEST(Integration, MobilityEpochsKeepPipelineValid) {
  // Move nodes under random waypoint, rebuild the topology every epoch, and
  // run the full pipeline on each snapshot (the paper's re-clustering view
  // of mobility: small k keeps the system combinatorially stable).
  GeneratorConfig cfg;
  cfg.num_nodes = 80;
  cfg.target_degree = 10.0;
  Rng rng(3003);
  AdHocNetwork net = generate_network(cfg, rng);
  RandomWaypointModel model(RandomWaypointConfig{}, net.num_nodes(),
                            net.field, rng);

  std::size_t validated = 0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    for (int t = 0; t < 5; ++t) model.step(net, rng);
    net.rebuild_graph();
    if (!is_connected(net.graph)) continue;  // mobility may split the net
    PipelineOptions opts;
    opts.k = 2;
    const auto r = build_connected_clustering(net, opts);  // validates
    EXPECT_GT(r.cds.size(), 0u);
    ++validated;
  }
  EXPECT_GE(validated, 3u);
}

TEST(Integration, BroadcastSavingsAcrossPipelines) {
  GeneratorConfig cfg;
  cfg.num_nodes = 150;
  Rng rng(3004);
  const AdHocNetwork net = generate_network(cfg, rng);
  const Clustering c = khop_clustering(net.graph, 2);
  const std::size_t blind = blind_flood(net.graph, 0).transmissions;
  for (const Pipeline p : kAllPipelines) {
    const Backbone b = build_backbone(net.graph, c, p);
    const BroadcastResult r = cds_flood(net.graph, c, b, 0);
    EXPECT_TRUE(r.complete) << pipeline_name(p);
    EXPECT_LT(r.transmissions, blind) << pipeline_name(p);
  }
}

TEST(Integration, ExperimentHarnessMatchesDirectPipeline) {
  // One trial of the experiment driver equals running the pieces by hand
  // with the same seed and radius.
  ExperimentConfig cfg;
  cfg.num_nodes = 90;
  cfg.k = 2;
  cfg.pipeline = Pipeline::kAcLmst;
  cfg.radius = resolve_radius(cfg, 42);

  Rng rng_a(4242);
  const TrialResultMetrics m = run_single_trial(cfg, rng_a);

  Rng rng_b(4242);
  GeneratorConfig gen;
  gen.num_nodes = 90;
  gen.explicit_radius = cfg.radius;
  const AdHocNetwork net = generate_network(gen, rng_b);
  const Clustering c = khop_clustering(net.graph, 2);
  const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);

  EXPECT_DOUBLE_EQ(m.clusterheads, static_cast<double>(b.heads.size()));
  EXPECT_DOUBLE_EQ(m.gateways, static_cast<double>(b.gateways.size()));
}

TEST(Integration, RotationPreservesBackboneValidityEachEpoch) {
  GeneratorConfig cfg;
  cfg.num_nodes = 70;
  cfg.target_degree = 8.0;
  Rng rng(3005);
  const AdHocNetwork net = generate_network(cfg, rng);

  RotationConfig rot;
  rot.max_epochs = 8;
  rot.energy.initial = 100.0;
  Rng rot_rng(5);
  const RotationResult r = run_rotation(net, rot, rot_rng);
  ASSERT_EQ(r.epochs.size(), 8u);
  for (const auto& e : r.epochs) {
    EXPECT_GT(e.heads, 0u);
    EXPECT_EQ(e.alive, net.num_nodes());  // plenty of energy for 8 epochs
  }
}

}  // namespace
}  // namespace khop
