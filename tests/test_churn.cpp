// Churn subsystem tests: DynamicGraph, trace generation, and the incremental
// engine checked bit-exact against the naive full-recompute reference after
// every event.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_reference.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/graph/dynamic_graph.hpp"
#include "khop/net/generator.hpp"
#include "khop/net/mobility.hpp"

namespace khop {
namespace {

Graph make_network(std::uint64_t seed, std::size_t n, double degree = 8.0) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  Rng rng(seed);
  return generate_network(cfg, rng).graph;
}

// ---------------------------------------------------------------------------
// DynamicGraph

TEST(DynamicGraph, MutationsAndSnapshot) {
  const Graph g0 = Graph::from_edges(
      5, std::vector<std::pair<NodeId, NodeId>>{
             {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  DynamicGraph g(g0);
  EXPECT_EQ(g.num_alive(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(g.has_edge(0, 4));

  const std::vector<NodeId> former = g.remove_node(2);
  EXPECT_EQ(former, (std::vector<NodeId>{1, 3}));
  EXPECT_FALSE(g.alive(2));
  EXPECT_EQ(g.num_alive(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.neighbors(2).empty());
  EXPECT_EQ(g.check_consistency(), "");

  EXPECT_TRUE(g.add_edge(1, 3));
  EXPECT_FALSE(g.add_edge(1, 3));  // already present
  EXPECT_TRUE(g.remove_edge(1, 3));
  EXPECT_FALSE(g.remove_edge(1, 3));  // already absent

  g.add_node(2, std::vector<NodeId>{1, 4});
  EXPECT_TRUE(g.alive(2));
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_FALSE(g.has_edge(2, 3));
  EXPECT_EQ(g.check_consistency(), "");

  const Graph snap = g.snapshot();
  EXPECT_EQ(snap.num_nodes(), 5u);
  EXPECT_EQ(snap.num_edges(), g.num_edges());
  EXPECT_TRUE(snap.has_edge(2, 4));
  EXPECT_FALSE(snap.has_edge(2, 3));
}

TEST(DynamicGraph, RejectsInvalidMutations) {
  const Graph g0 = Graph::from_edges(
      3, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}});
  DynamicGraph g(g0);
  EXPECT_THROW(g.add_node(0, std::vector<NodeId>{1}), InvalidArgument);  // already alive
  g.remove_node(2);
  EXPECT_THROW(g.remove_node(2), InvalidArgument);    // already dead
  EXPECT_THROW(g.add_edge(0, 2), InvalidArgument);    // dead endpoint
  EXPECT_THROW(g.add_node(2, std::vector<NodeId>{2}), InvalidArgument);  // self-loop
}

// ---------------------------------------------------------------------------
// VirtualLinkMap incremental mutators

TEST(VirtualLinkMap, InsertAndErase) {
  VirtualLinkMap m = VirtualLinkMap::from_links({});
  m.insert({1, 5, 2, {1, 3, 5}});
  m.insert({2, 5, 1, {2, 5}});
  EXPECT_TRUE(m.contains(5, 1));
  EXPECT_EQ(m.link(1, 5).hops, 2u);

  m.insert({1, 5, 3, {1, 0, 4, 5}});  // upsert replaces the path
  EXPECT_EQ(m.link(1, 5).hops, 3u);
  EXPECT_EQ(m.all().size(), 2u);

  EXPECT_TRUE(m.erase(1, 5));
  EXPECT_FALSE(m.erase(1, 5));
  EXPECT_FALSE(m.contains(1, 5));
  EXPECT_TRUE(m.contains(2, 5));  // survivor index stays valid after swap-pop
  EXPECT_EQ(m.link(2, 5).hops, 1u);
}

// ---------------------------------------------------------------------------
// ChurnTrace

TEST(ChurnTrace, DeterministicAndValidByConstruction) {
  const Graph g0 = make_network(7701, 60);
  ChurnTraceConfig cfg;
  cfg.num_events = 300;
  const ChurnTrace a = ChurnTrace::generate(g0, cfg, 99);
  const ChurnTrace b = ChurnTrace::generate(g0, cfg, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].type, b.events()[i].type);
    EXPECT_EQ(a.events()[i].a, b.events()[i].a);
    EXPECT_EQ(a.events()[i].b, b.events()[i].b);
    EXPECT_EQ(a.events()[i].neighbors, b.events()[i].neighbors);
  }
  const ChurnTrace c = ChurnTrace::generate(g0, cfg, 100);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c.events()[i].type != a.events()[i].type ||
              c.events()[i].a != a.events()[i].a;
  }
  EXPECT_TRUE(differs);

  // Replay never trips a DynamicGraph precondition.
  DynamicGraph g(g0);
  for (const ChurnEvent& e : a.events()) apply_event(g, e);
  EXPECT_EQ(g.check_consistency(), "");
}

TEST(ChurnTrace, PartitionScenarioEmitsScriptedFailuresAndRejoins) {
  const Graph g0 = make_network(7702, 80);
  ChurnTraceConfig cfg;
  cfg.num_events = 150;
  cfg.partition_at = 20;
  cfg.partition_radius = 2;
  cfg.rejoin_after = 30;
  const ChurnTrace t = ChurnTrace::generate(g0, cfg, 5);
  std::size_t fails = 0;
  std::size_t joins = 0;
  for (const ChurnEvent& e : t.events()) {
    fails += e.type == ChurnEventType::kFail;
    joins += e.type == ChurnEventType::kJoin;
  }
  EXPECT_GT(fails, 0u);
  EXPECT_GT(joins, 0u);
}

// ---------------------------------------------------------------------------
// ChurnEngine vs ReferenceChurnMaintainer (bit-exact after every event)

struct EngineCase {
  std::uint64_t seed;
  std::size_t n;
  Hops k;
  Pipeline pipeline;
};

class EngineEquivalence : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineEquivalence, MatchesReferenceAfterEveryEvent) {
  const EngineCase p = GetParam();
  const Graph g0 = make_network(p.seed, p.n);
  ChurnTraceConfig cfg;
  cfg.num_events = 250;
  const ChurnTrace trace = ChurnTrace::generate(g0, cfg, p.seed + 1);

  ChurnEngine engine(g0, p.k, p.pipeline);
  ReferenceChurnMaintainer ref(g0, p.k, p.pipeline);
  std::size_t applied = 0;
  for (const ChurnEvent& e : trace.events()) {
    engine.apply(e);
    ref.apply(e);
    ++applied;
    ASSERT_EQ(engine.clustering().head_of, ref.head_of())
        << "head_of diverged after event " << applied;
    ASSERT_EQ(engine.clustering().dist_to_head, ref.dist_to_head())
        << "dist_to_head diverged after event " << applied;
    if (applied % 50 == 0) {
      const Backbone oracle = ref.rebuild_backbone();
      Backbone got = engine.backbone();
      std::sort(got.heads.begin(), got.heads.end());
      std::sort(got.gateways.begin(), got.gateways.end());
      std::sort(got.virtual_links.begin(), got.virtual_links.end());
      ASSERT_EQ(got.heads, oracle.heads) << "after event " << applied;
      ASSERT_EQ(got.gateways, oracle.gateways) << "after event " << applied;
      ASSERT_EQ(got.virtual_links, oracle.virtual_links)
          << "after event " << applied;
      ASSERT_EQ(engine.audit(), "") << "after event " << applied;
    }
  }
  EXPECT_EQ(engine.stats().full_rebuilds, 0u);
  EXPECT_EQ(engine.audit(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Churn, EngineEquivalence,
    ::testing::Values(EngineCase{4201, 70, 1, Pipeline::kAcMesh},
                      EngineCase{4202, 80, 2, Pipeline::kAcLmst},
                      EngineCase{4203, 80, 2, Pipeline::kNcMesh},
                      EngineCase{4204, 90, 3, Pipeline::kNcLmst}),
    [](const ::testing::TestParamInfo<EngineCase>& info) {
      std::string name = "n" + std::to_string(info.param.n) + "_k" +
                         std::to_string(info.param.k) + "_" +
                         std::string(pipeline_name(info.param.pipeline));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(ChurnEngine, PartitionAndRejoinStayAudited) {
  const Graph g0 = make_network(4301, 90);
  ChurnTraceConfig cfg;
  cfg.num_events = 160;
  cfg.partition_at = 15;
  cfg.partition_radius = 2;
  cfg.rejoin_after = 25;
  const ChurnTrace trace = ChurnTrace::generate(g0, cfg, 17);

  ChurnEngineOptions opts;
  opts.audit_every = 20;
  ChurnEngine engine(g0, 2, Pipeline::kAcLmst, opts);
  ReferenceChurnMaintainer ref(g0, 2, Pipeline::kAcLmst);
  for (const ChurnEvent& e : trace.events()) {
    engine.apply(e);
    ref.apply(e);
    ASSERT_EQ(engine.clustering().head_of, ref.head_of());
  }
  EXPECT_EQ(engine.audit(), "");
  EXPECT_GT(engine.stats().partitions, 0u);
  EXPECT_GT(engine.stats().merges, 0u);
  EXPECT_EQ(engine.stats().full_rebuilds, 0u);
}

TEST(ChurnEngine, RunAuditsPeriodically) {
  const Graph g0 = make_network(4302, 60);
  ChurnTraceConfig cfg;
  cfg.num_events = 120;
  const ChurnTrace trace = ChurnTrace::generate(g0, cfg, 3);
  ChurnEngineOptions opts;
  opts.audit_every = 10;
  ChurnEngine engine(g0, 2, Pipeline::kNcMesh, opts);
  EXPECT_EQ(engine.run(trace), trace.size());
  EXPECT_GE(engine.stats().audits, trace.size() / 10);
  EXPECT_EQ(engine.stats().events, trace.size());
}

TEST(ChurnEngine, LinkNoOpIsReported) {
  const Graph g0 = make_network(4303, 40);
  ChurnEngine engine(g0, 2, Pipeline::kAcMesh);
  // Re-adding an existing edge is a structural no-op.
  NodeId u = 0;
  const auto nbrs = g0.neighbors(0);
  ASSERT_FALSE(nbrs.empty());
  NodeId v = nbrs.front();
  if (u > v) std::swap(u, v);
  ChurnEvent e;
  e.type = ChurnEventType::kLinkUp;
  e.a = u;
  e.b = v;
  const auto rep = engine.apply(e);
  EXPECT_TRUE(rep.structural_noop);
  EXPECT_EQ(engine.stats().noop_events, 1u);
  EXPECT_EQ(engine.audit(), "");
}

TEST(ChurnEngine, RejectsGmstAndBadK) {
  const Graph g0 = make_network(4304, 30);
  EXPECT_THROW(ChurnEngine(g0, 2, Pipeline::kGmst), InvalidArgument);
  EXPECT_THROW(ChurnEngine(g0, 0, Pipeline::kAcMesh), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Mobility-driven churn

TEST(Mobility, DiffTopologyFindsFlips) {
  const Graph before = Graph::from_edges(
      4, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}, {2, 3}});
  const Graph after = Graph::from_edges(
      4, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 3}, {2, 3}});
  const std::vector<LinkFlip> flips = diff_topology(before, after);
  ASSERT_EQ(flips.size(), 2u);
  EXPECT_EQ(flips[0].u, 1u);
  EXPECT_EQ(flips[0].v, 2u);
  EXPECT_FALSE(flips[0].up);
  EXPECT_EQ(flips[1].u, 1u);
  EXPECT_EQ(flips[1].v, 3u);
  EXPECT_TRUE(flips[1].up);
}

TEST(Mobility, WaypointFlipsDriveEngine) {
  GeneratorConfig gcfg;
  gcfg.num_nodes = 60;
  gcfg.target_degree = 10.0;
  Rng rng(8801);
  AdHocNetwork net = generate_network(gcfg, rng);
  ChurnEngine engine(net.graph, 2, Pipeline::kAcMesh);

  RandomWaypointConfig mcfg;
  mcfg.min_speed = 2.0;
  mcfg.max_speed = 6.0;
  RandomWaypointModel model(mcfg, net.num_nodes(), net.field, rng);
  std::size_t flips_applied = 0;
  for (int tick = 0; tick < 6; ++tick) {
    const Graph before = net.graph;
    model.step(net, rng);
    net.rebuild_graph();
    for (const LinkFlip& f : diff_topology(before, net.graph)) {
      ChurnEvent e;
      e.type = f.up ? ChurnEventType::kLinkUp : ChurnEventType::kLinkDown;
      e.a = f.u;
      e.b = f.v;
      engine.apply(e);
      ++flips_applied;
    }
    ASSERT_EQ(engine.audit(), "") << "after tick " << tick;
  }
  EXPECT_GT(flips_applied, 0u);
  EXPECT_EQ(engine.stats().full_rebuilds, 0u);
}

}  // namespace
}  // namespace khop
