// Unit tests for the broadcast application (blind vs CDS-confined flooding).
#include <gtest/gtest.h>

#include "khop/cds/broadcast.hpp"
#include "khop/common/error.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

struct Fixture {
  AdHocNetwork net;
  Clustering clustering;
  Backbone backbone;

  explicit Fixture(std::uint64_t seed, Hops k, std::size_t n = 120) {
    GeneratorConfig cfg;
    cfg.num_nodes = n;
    Rng rng(seed);
    net = generate_network(cfg, rng);
    clustering = khop_clustering(net.graph, k);
    backbone = build_backbone(net.graph, clustering, Pipeline::kAcLmst);
  }
};

TEST(Broadcast, BlindFloodReachesEveryoneWithNTransmissions) {
  const Fixture f(1001, 2);
  const BroadcastResult r = blind_flood(f.net.graph, 0);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.delivered, f.net.num_nodes());
  EXPECT_EQ(r.transmissions, f.net.num_nodes());
}

TEST(Broadcast, CdsFloodDeliversEverywhere) {
  for (const Hops k : {1u, 2u, 3u}) {
    const Fixture f(1002 + k, k);
    for (const CdsFloodModel model :
         {CdsFloodModel::kBallInterior, CdsFloodModel::kMemberTrees}) {
      for (const NodeId src : {NodeId{0}, NodeId{5},
                               static_cast<NodeId>(f.net.num_nodes() - 1)}) {
        const BroadcastResult r =
            cds_flood(f.net.graph, f.clustering, f.backbone, src, model);
        EXPECT_TRUE(r.complete)
            << "k=" << k << " src=" << src << " model="
            << static_cast<int>(model);
        EXPECT_EQ(r.delivered, f.net.num_nodes());
      }
    }
  }
}

TEST(Broadcast, MemberTreesNeverForwardMoreThanBallInterior) {
  for (const Hops k : {2u, 3u, 4u}) {
    const Fixture f(1010 + k, k, 150);
    const BroadcastResult trees = cds_flood(
        f.net.graph, f.clustering, f.backbone, 0,
        CdsFloodModel::kMemberTrees);
    const BroadcastResult balls = cds_flood(
        f.net.graph, f.clustering, f.backbone, 0,
        CdsFloodModel::kBallInterior);
    EXPECT_LE(trees.transmissions, balls.transmissions) << "k=" << k;
    EXPECT_TRUE(trees.complete);
    EXPECT_TRUE(balls.complete);
  }
}

TEST(Broadcast, ModelsAgreeAtK1) {
  const Fixture f(1009, 1);
  const BroadcastResult a = cds_flood(f.net.graph, f.clustering, f.backbone,
                                      0, CdsFloodModel::kBallInterior);
  const BroadcastResult b = cds_flood(f.net.graph, f.clustering, f.backbone,
                                      0, CdsFloodModel::kMemberTrees);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Broadcast, CdsFloodSavesTransmissions) {
  const Fixture f(1003, 2, 160);
  const BroadcastResult blind = blind_flood(f.net.graph, 0);
  const BroadcastResult cds =
      cds_flood(f.net.graph, f.clustering, f.backbone, 0);
  EXPECT_LT(cds.transmissions, blind.transmissions);
}

TEST(Broadcast, K1CdsFloodForwardsOnlyBackbone) {
  const Fixture f(1004, 1);
  const BroadcastResult r =
      cds_flood(f.net.graph, f.clustering, f.backbone, 0);
  EXPECT_TRUE(r.complete);
  // Upper bound: backbone nodes + the source itself.
  EXPECT_LE(r.transmissions, f.backbone.cds_size() + 1);
}

TEST(Broadcast, SourceCountsAsTransmitterAndReceiver) {
  const Fixture f(1005, 2);
  const BroadcastResult r = blind_flood(f.net.graph, 3);
  EXPECT_GE(r.transmissions, 1u);
  EXPECT_GE(r.delivered, 1u);
  EXPECT_GE(r.rounds, 1u);
}

TEST(Broadcast, RejectsBadSource) {
  const Fixture f(1006, 1, 50);
  EXPECT_THROW(blind_flood(f.net.graph, static_cast<NodeId>(9999)),
               InvalidArgument);
}

TEST(Broadcast, LatencyBoundedByDiameterPlusDetour) {
  // CDS flooding may take longer than blind flooding but is still bounded.
  const Fixture f(1007, 2);
  const BroadcastResult blind = blind_flood(f.net.graph, 0);
  const BroadcastResult cds =
      cds_flood(f.net.graph, f.clustering, f.backbone, 0);
  EXPECT_GE(cds.rounds, blind.rounds);
  EXPECT_LE(cds.rounds, blind.rounds * 4 + 4);
}

}  // namespace
}  // namespace khop
