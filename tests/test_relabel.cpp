// Space-filling-curve relabeling properties: round-trip identity, BFS
// distance equivariance, election equivariance under carried priorities,
// and — the oracle contract — bit-exact reference equivalence of the full
// pipeline run on the relabeled graph, serial and parallel.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "khop/cds/cds.hpp"
#include "khop/cluster/reference.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/bfs_reference.hpp"
#include "khop/graph/relabel.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {
namespace {

AdHocNetwork random_network(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng);
}

TEST(Hilbert, OrderTwoMatchesHandComputedCurve) {
  // The order-2 curve visits the 4x4 grid in the classic U shape.
  EXPECT_EQ(hilbert_d_index(0, 0, 2), 0u);
  EXPECT_EQ(hilbert_d_index(1, 0, 2), 1u);
  EXPECT_EQ(hilbert_d_index(1, 1, 2), 2u);
  EXPECT_EQ(hilbert_d_index(0, 1, 2), 3u);
  EXPECT_EQ(hilbert_d_index(0, 2, 2), 4u);
  EXPECT_EQ(hilbert_d_index(3, 0, 2), 15u);
}

TEST(Hilbert, IsABijectionAndNeighborsAreAdjacent) {
  constexpr std::uint32_t order = 4;
  constexpr std::uint32_t side = 1u << order;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cell_of(side * side);
  std::set<std::uint64_t> seen;
  for (std::uint32_t x = 0; x < side; ++x) {
    for (std::uint32_t y = 0; y < side; ++y) {
      const std::uint64_t d = hilbert_d_index(x, y, order);
      ASSERT_LT(d, side * side);
      ASSERT_TRUE(seen.insert(d).second) << "duplicate d-index " << d;
      cell_of[d] = {x, y};
    }
  }
  // Consecutive d-indices are grid neighbors: the continuity that makes the
  // relabeling a locality win.
  for (std::size_t d = 1; d < cell_of.size(); ++d) {
    const auto [x0, y0] = cell_of[d - 1];
    const auto [x1, y1] = cell_of[d];
    const std::uint32_t manhattan =
        (x0 > x1 ? x0 - x1 : x1 - x0) + (y0 > y1 ? y0 - y1 : y1 - y0);
    EXPECT_EQ(manhattan, 1u) << "discontinuity at d=" << d;
  }
}

TEST(Relabel, RoundTripIsBitExact) {
  const AdHocNetwork net = random_network(120, 6.0, 41);
  const Relabeling r = sfc_relabeling(net.positions);
  ASSERT_EQ(r.size(), net.graph.num_nodes());

  // The two directions are mutually inverse permutations.
  for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    EXPECT_EQ(r.old_of_new[r.new_of_old[u]], u);
  }

  const Graph permuted = relabel(net.graph, r);
  const Graph back = relabel(permuted, inverse(r));
  EXPECT_EQ(back.edge_list(), net.graph.edge_list());
  EXPECT_EQ(back.num_nodes(), net.graph.num_nodes());

  const std::vector<Point2> pts_permuted = relabel(net.positions, r);
  const std::vector<Point2> pts_back = relabel(pts_permuted, inverse(r));
  for (std::size_t u = 0; u < net.positions.size(); ++u) {
    EXPECT_EQ(pts_back[u].x, net.positions[u].x);
    EXPECT_EQ(pts_back[u].y, net.positions[u].y);
    EXPECT_EQ(pts_permuted[r.new_of_old[u]].x, net.positions[u].x);
  }

  // Identity relabeling is a no-op.
  const Relabeling id = identity_relabeling(net.graph.num_nodes());
  EXPECT_EQ(relabel(net.graph, id).edge_list(), net.graph.edge_list());
}

TEST(Relabel, GraphStructureIsEquivariant) {
  const AdHocNetwork net = random_network(150, 7.0, 43);
  const Relabeling r = sfc_relabeling(net.positions);
  const Graph g2 = relabel(net.graph, r);
  ASSERT_EQ(g2.num_edges(), net.graph.num_edges());
  for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    EXPECT_EQ(g2.degree(r.new_of_old[u]), net.graph.degree(u));
    for (NodeId v : net.graph.neighbors(u)) {
      EXPECT_TRUE(g2.has_edge(r.new_of_old[u], r.new_of_old[v]));
    }
  }
}

TEST(Relabel, BfsDistancesAreEquivariant) {
  const AdHocNetwork net = random_network(130, 6.0, 47);
  const Relabeling r = sfc_relabeling(net.positions);
  const Graph g2 = relabel(net.graph, r);
  for (NodeId s = 0; s < net.graph.num_nodes(); s += 11) {
    const BfsTree direct = bfs(net.graph, s);
    const BfsTree mapped = to_original_ids(bfs(g2, r.new_of_old[s]), r);
    EXPECT_EQ(mapped.source, s);
    EXPECT_EQ(mapped.dist, direct.dist);
    // Canonical parents tie-break on raw ids, so only validate the mapped
    // parents as *a* shortest-path tree: parent at distance d-1, adjacent.
    for (NodeId v = 0; v < net.graph.num_nodes(); ++v) {
      if (v == s || mapped.dist[v] == kUnreachable) continue;
      ASSERT_NE(mapped.parent[v], kInvalidNode);
      EXPECT_EQ(mapped.dist[mapped.parent[v]] + 1, mapped.dist[v]);
      EXPECT_TRUE(net.graph.has_edge(mapped.parent[v], v));
    }
  }
}

TEST(Relabel, PriorityKeysAreCarried) {
  const AdHocNetwork net = random_network(90, 6.0, 53);
  const Relabeling r = sfc_relabeling(net.positions);
  const auto prios = make_priorities(net.graph, PriorityRule::kLowestId);
  const auto carried = relabel(prios, r);
  for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    EXPECT_EQ(carried[r.new_of_old[u]].key, prios[u].key);
    EXPECT_EQ(carried[r.new_of_old[u]].id, r.new_of_old[u]);
  }
}

TEST(Relabel, ElectionIsEquivariantUnderCarriedPriorities) {
  // Winner selection depends only on priority keys and hop distances, both
  // preserved by the renumbering, so heads, round count and (under the
  // distance rule) every node's distance to its head must match the direct
  // run exactly. head_of itself is NOT compared: distance ties resolve by
  // head id, which legitimately differs between the two id spaces.
  //
  // Equivariance requires *distinct* keys: make_priorities(kLowestId) uses a
  // constant key and encodes the priority in the id tie-break, which the
  // renumbering rewrites. key = old id gives the same total order explicitly.
  Workspace ws;
  const AdHocNetwork net = random_network(140, 6.0, 59);
  const Relabeling r = sfc_relabeling(net.positions);
  const Graph g2 = relabel(net.graph, r);
  std::vector<PriorityKey> prios(net.graph.num_nodes());
  for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    prios[u] = {static_cast<double>(u), u};
  }
  const auto carried = relabel(prios, r);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering direct = khop_clustering(
        net.graph, k, prios, AffiliationRule::kDistanceBased, ws);
    const Clustering mapped = to_original_ids(
        khop_clustering(g2, k, carried, AffiliationRule::kDistanceBased, ws),
        r);
    EXPECT_EQ(mapped.heads, direct.heads);
    EXPECT_EQ(mapped.election_rounds, direct.election_rounds);
    EXPECT_EQ(mapped.dist_to_head, direct.dist_to_head);
  }
}

TEST(Relabel, RelabeledRunsMatchReferenceAllPipelines) {
  // The acceptance contract: on the relabeled graph the optimized kernels
  // remain bit-exact against the preserved reference implementations, for
  // every affiliation rule and every backbone pipeline, serial and parallel
  // at thread counts {1, 2, hardware}.
  Workspace ws;
  ThreadPool pool_one(1), pool_two(2), pool_hw(0);
  const AdHocNetwork net = random_network(110, 6.0, 61);
  const Relabeling r = sfc_relabeling(net.positions);
  const Graph g2 = relabel(net.graph, r);
  const auto prios =
      relabel(make_priorities(net.graph, PriorityRule::kLowestId), r);

  for (const AffiliationRule rule :
       {AffiliationRule::kIdBased, AffiliationRule::kDistanceBased,
        AffiliationRule::kSizeBased}) {
    const Clustering got = khop_clustering(g2, 2, prios, rule, ws);
    const Clustering want = reference::khop_clustering(g2, 2, prios, rule);
    EXPECT_EQ(got.heads, want.heads);
    EXPECT_EQ(got.head_of, want.head_of);
    EXPECT_EQ(got.dist_to_head, want.dist_to_head);
    EXPECT_EQ(got.election_rounds, want.election_rounds);
  }

  const Clustering c2 = khop_clustering(
      g2, 2, prios, AffiliationRule::kDistanceBased, ws);
  for (const Pipeline p : kAllPipelines) {
    const Backbone want = reference::build_backbone(g2, c2, p);
    const Backbone serial = build_backbone(g2, c2, p, ws);
    EXPECT_EQ(serial.heads, want.heads);
    EXPECT_EQ(serial.gateways, want.gateways);
    EXPECT_EQ(serial.virtual_links, want.virtual_links);
    for (ThreadPool* pool : {&pool_one, &pool_two, &pool_hw}) {
      const Backbone par = build_backbone(g2, c2, p, *pool);
      EXPECT_EQ(par.heads, want.heads);
      EXPECT_EQ(par.gateways, want.gateways);
      EXPECT_EQ(par.virtual_links, want.virtual_links);
    }
  }
}

TEST(Relabel, InverseMappedBackboneValidatesOnOriginalGraph) {
  // permute -> run -> inverse-map: the result is a valid k-hop CDS of the
  // *original* graph for all five pipelines, and its head set matches the
  // direct run's (carried priorities make the election equivariant).
  Workspace ws;
  const AdHocNetwork net = random_network(140, 7.0, 67);
  const Relabeling r = sfc_relabeling(net.positions);
  const Graph g2 = relabel(net.graph, r);
  std::vector<PriorityKey> prios(net.graph.num_nodes());
  for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    prios[u] = {static_cast<double>(u), u};
  }

  const Clustering direct = khop_clustering(
      net.graph, 2, prios, AffiliationRule::kDistanceBased, ws);
  const Clustering c2 = khop_clustering(
      g2, 2, relabel(prios, r), AffiliationRule::kDistanceBased, ws);
  const Clustering c_mapped = to_original_ids(c2, r);
  EXPECT_EQ(c_mapped.heads, direct.heads);

  for (const Pipeline p : kAllPipelines) {
    const Backbone b_mapped = to_original_ids(build_backbone(g2, c2, p, ws), r);
    EXPECT_EQ(b_mapped.heads, c_mapped.heads);
    const std::string err = validate_k_cds(net.graph, c_mapped, b_mapped);
    EXPECT_TRUE(err.empty()) << "pipeline " << static_cast<int>(p) << ": "
                             << err;
  }
}

}  // namespace
}  // namespace khop
