// Bit-exact equivalence of the PR 4 backbone overhaul: the fused bounded
// sweeps (serial and parallel) must reproduce the preserved reference
// pipeline — reference neighbor rules + map-grouped unbounded link build +
// complete-virtual-graph G-MST — exactly, on every pipeline. The larger-n
// and hardware-thread-count sweep lives in tests/slow/.
#include <gtest/gtest.h>

#include <vector>

#include "khop/gateway/backbone.hpp"
#include "khop/gateway/head_sweep.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/net/generator.hpp"
#include "khop/nbr/reference.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

void expect_backbone_eq(const Backbone& got, const Backbone& want) {
  EXPECT_EQ(got.heads, want.heads);
  EXPECT_EQ(got.gateways, want.gateways);
  EXPECT_EQ(got.virtual_links, want.virtual_links);
}

TEST(BackboneEquivalence, AllPipelinesMatchReferenceSerial) {
  Workspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(70 + 25 * seed, 6.0, 400 + seed);
    for (Hops k = 1; k <= 3; ++k) {
      const Clustering c = khop_clustering(g, k);
      for (const Pipeline p : kAllPipelines) {
        expect_backbone_eq(build_backbone(g, c, p, ws),
                           reference::build_backbone(g, c, p));
      }
    }
  }
}

TEST(BackboneEquivalence, AllPipelinesMatchReferenceParallel) {
  ThreadPool pool(2);
  const Graph g = random_topology(120, 6.0, 410);
  for (Hops k = 1; k <= 2; ++k) {
    const Clustering c = khop_clustering(g, k);
    for (const Pipeline p : kAllPipelines) {
      expect_backbone_eq(build_backbone(g, c, p, pool),
                         reference::build_backbone(g, c, p));
    }
  }
}

TEST(BackboneEquivalence, WuLouSpecMatchesReference) {
  const Graph g = random_topology(100, 6.0, 420);
  const Clustering c = khop_clustering(g, 1);
  BackboneSpec spec;
  spec.neighbor_rule = NeighborRule::kWuLou25;
  for (const GatewayAlgorithm ga :
       {GatewayAlgorithm::kMesh, GatewayAlgorithm::kLmst}) {
    spec.gateway = ga;
    Workspace ws;
    ThreadPool pool(2);
    expect_backbone_eq(build_backbone(g, c, spec, ws),
                       reference::build_backbone(g, c, spec));
    expect_backbone_eq(build_backbone(g, c, spec, pool),
                       reference::build_backbone(g, c, spec));
  }
}

TEST(BackboneEquivalence, LmstIntersectionKeepRuleMatchesReference) {
  const Graph g = random_topology(110, 6.0, 430);
  const Clustering c = khop_clustering(g, 2);
  BackboneSpec spec;
  spec.neighbor_rule = NeighborRule::kAllWithin2k1;
  spec.gateway = GatewayAlgorithm::kLmst;
  spec.lmst_keep = LmstKeepRule::kBothEndpoints;
  Workspace ws;
  expect_backbone_eq(build_backbone(g, c, spec, ws),
                     reference::build_backbone(g, c, spec));
}

TEST(BackboneEquivalence, GmstMatchesReferenceIncludingTree) {
  Workspace ws;
  ThreadPool pool(2);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(90 + 15 * seed, 6.0, 440 + seed);
    for (Hops k = 1; k <= 2; ++k) {
      const Clustering c = khop_clustering(g, k);
      const GmstResult want = reference::gmst_gateways(g, c);
      for (const GmstResult& got :
           {gmst_gateways(g, c), gmst_gateways(g, c, ws),
            gmst_gateways(g, c, pool)}) {
        ASSERT_EQ(got.tree.size(), want.tree.size());
        for (std::size_t i = 0; i < got.tree.size(); ++i) {
          EXPECT_EQ(got.tree[i].u, want.tree[i].u);
          EXPECT_EQ(got.tree[i].v, want.tree[i].v);
          EXPECT_EQ(got.tree[i].weight, want.tree[i].weight);
        }
        EXPECT_EQ(got.kept_links, want.kept_links);
        EXPECT_EQ(got.gateways, want.gateways);
      }
    }
  }
}

TEST(BackboneEquivalence, FusedSweepMatchesTwoPassSelection) {
  // The fused sweep's NeighborSelection must equal select_neighbors(NC) and
  // its links must equal the stand-alone build over the selection's pairs.
  Workspace ws;
  const Graph g = random_topology(130, 6.0, 450);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(g, k);
    const HeadSweep sweep = nc_sweep(g, c, ws);
    const NeighborSelection sel =
        select_neighbors(g, c, NeighborRule::kAllWithin2k1);
    EXPECT_EQ(sweep.sel.selected, sel.selected);
    EXPECT_EQ(sweep.sel.head_pairs, sel.head_pairs);

    const VirtualLinkMap links = VirtualLinkMap::build(g, sel.head_pairs);
    ASSERT_EQ(sweep.links.all().size(), links.all().size());
    for (std::size_t i = 0; i < links.all().size(); ++i) {
      EXPECT_EQ(sweep.links.all()[i].u, links.all()[i].u);
      EXPECT_EQ(sweep.links.all()[i].v, links.all()[i].v);
      EXPECT_EQ(sweep.links.all()[i].hops, links.all()[i].hops);
      EXPECT_EQ(sweep.links.all()[i].path, links.all()[i].path);
    }
  }
}

TEST(BackboneEquivalence, SingleHeadClusteringBuildsEmptyBackbone) {
  const Graph g = Graph::from_edges(
      3, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}});
  const Clustering c = khop_clustering(g, 2);
  ASSERT_EQ(c.heads.size(), 1u);
  Workspace ws;
  ThreadPool pool(2);
  for (const Pipeline p : kAllPipelines) {
    expect_backbone_eq(build_backbone(g, c, p, ws),
                       reference::build_backbone(g, c, p));
    expect_backbone_eq(build_backbone(g, c, p, pool),
                       reference::build_backbone(g, c, p));
  }
}

}  // namespace
}  // namespace khop
