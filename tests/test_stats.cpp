// Unit tests for streaming statistics and the paper's CI stopping rule.
#include <gtest/gtest.h>

#include <cmath>

#include "khop/exp/stats.hpp"

namespace khop {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, FewSamplesHaveZeroVariance) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(RunningStats, ConstantStreamHasZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StudentT, TableValues) {
  EXPECT_DOUBLE_EQ(student_t_90(1), 6.314);
  EXPECT_DOUBLE_EQ(student_t_90(10), 1.812);
  EXPECT_DOUBLE_EQ(student_t_90(30), 1.697);
  EXPECT_DOUBLE_EQ(student_t_90(100), 1.645);  // normal regime
  EXPECT_DOUBLE_EQ(student_t_90(0), 6.314);    // degenerate guard
}

TEST(CiHalfwidth, InfiniteBeforeTwoSamples) {
  RunningStats s;
  s.add(1.0);
  EXPECT_TRUE(std::isinf(ci_halfwidth_90(s)));
}

TEST(CiHalfwidth, MatchesManualFormula) {
  RunningStats s;
  for (const double x : {10.0, 12.0, 11.0, 13.0, 9.0}) s.add(x);
  const double expect =
      student_t_90(4) * s.stddev() / std::sqrt(5.0);
  EXPECT_DOUBLE_EQ(ci_halfwidth_90(s), expect);
}

TEST(CiHalfwidth, ShrinksWithSamples) {
  RunningStats small, large;
  // Same alternating data, 10 vs 1000 points.
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 9.0 : 11.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_LT(ci_halfwidth_90(large), ci_halfwidth_90(small));
}

TEST(CiStoppingRule, AcceptsTightSeries) {
  RunningStats s;
  for (int i = 0; i < 200; ++i) s.add(100.0 + (i % 2 == 0 ? 0.1 : -0.1));
  EXPECT_TRUE(ci_within_relative(s, 0.01));
}

TEST(CiStoppingRule, RejectsWideSeries) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(i % 2 == 0 ? 10.0 : 200.0);
  EXPECT_FALSE(ci_within_relative(s, 0.01));
}

TEST(CiStoppingRule, ZeroMeanNeedsZeroVariance) {
  RunningStats zero;
  zero.add(0.0);
  zero.add(0.0);
  EXPECT_TRUE(ci_within_relative(zero, 0.01));

  RunningStats mixed;
  mixed.add(-1.0);
  mixed.add(1.0);
  EXPECT_FALSE(ci_within_relative(mixed, 0.01));
}

}  // namespace
}  // namespace khop
