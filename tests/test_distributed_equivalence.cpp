// Parameterized cross-validation sweep: the distributed protocol stack must
// reproduce the centralized pipeline bit-for-bit across seeds, densities and
// k - the library's strongest end-to-end correctness statement.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "khop/net/generator.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"
#include "khop/sim/protocols/gateway_protocol.hpp"

namespace khop {
namespace {

using Param = std::tuple<std::uint64_t /*seed*/, double /*degree*/,
                         Hops /*k*/>;

class DistributedEquivalence : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [seed, degree, k] = GetParam();
    GeneratorConfig cfg;
    cfg.num_nodes = 80;
    cfg.target_degree = degree;
    Rng rng(seed);
    net_ = generate_network(cfg, rng);
  }

  AdHocNetwork net_;
};

TEST_P(DistributedEquivalence, FullStackMatchesCentralized) {
  const auto [seed, degree, k] = GetParam();
  const auto prio = make_priorities(net_.graph, PriorityRule::kLowestId);

  const Clustering central_c = khop_clustering(net_.graph, k, prio);
  const Clustering dist_c = run_distributed_clustering(
      net_.graph, k, prio, AffiliationRule::kIdBased);
  ASSERT_EQ(dist_c.heads, central_c.heads);
  ASSERT_EQ(dist_c.head_of, central_c.head_of);
  ASSERT_EQ(dist_c.dist_to_head, central_c.dist_to_head);

  const Backbone central_b =
      build_backbone(net_.graph, central_c, Pipeline::kAcLmst);
  const Backbone dist_b = run_distributed_aclmst(net_.graph, dist_c);
  EXPECT_EQ(dist_b.gateways, central_b.gateways);
  EXPECT_EQ(dist_b.virtual_links, central_b.virtual_links);
}

std::string param_name(const ::testing::TestParamInfo<Param>& pinfo) {
  const auto [seed, degree, k] = pinfo.param;
  return "s" + std::to_string(seed) + "_D" +
         std::to_string(static_cast<int>(degree)) + "_k" + std::to_string(k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributedEquivalence,
    ::testing::Combine(::testing::Values(3001u, 3002u, 3003u, 3004u),
                       ::testing::Values(6.0, 10.0),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    param_name);

}  // namespace
}  // namespace khop
