// Unit tests for the Krishna-style overlapping k-cluster cover (the
// related-work definition the paper contrasts against).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/cluster/kcluster.hpp"
#include "khop/common/error.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

Graph path_graph(std::size_t n) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(KCluster, PathGraphK1GivesEdgeClusters) {
  // Path 0-1-2-3: greedy from 0 -> {0,1}; seed 2 -> {1,2,3}? No: members of
  // {2}'s cluster need pairwise distance <= 1: {1,2} then 3 fails against 1,
  // so {1,2}; 3 uncovered seeds {2,3}... seed order: 0 covered? Walk it:
  //   seed 0: {0,1}; seed 2 (uncovered): candidates in ball {1,2,3}:
  //     1 fits (d(1,2)=1), 3 fits? d(3,1)=2 > 1 -> no. cluster {1,2}.
  //   seed 3: ball {2,3}: 2 fits. cluster {2,3}.
  const auto cover = krishna_kclusters(path_graph(4), 1);
  ASSERT_EQ(cover.clusters.size(), 3u);
  EXPECT_EQ(cover.clusters[0], (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(cover.clusters[1], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(cover.clusters[2], (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(validate_kcluster_cover(path_graph(4), cover).empty());
}

TEST(KCluster, ClustersOverlap) {
  const auto cover = krishna_kclusters(path_graph(4), 1);
  // Node 1 belongs to two clusters - the defining difference from the
  // paper's non-overlapping head-centric clustering.
  EXPECT_EQ(cover.clusters_of[1].size(), 2u);
}

TEST(KCluster, WholeGraphWhenKIsDiameter) {
  const Graph g = path_graph(5);
  const auto cover = krishna_kclusters(g, 4);
  ASSERT_EQ(cover.clusters.size(), 1u);
  EXPECT_EQ(cover.clusters[0].size(), 5u);
}

TEST(KCluster, PairwisePropertyOnRandomNetworks) {
  Rng rng(1801);
  GeneratorConfig cfg;
  cfg.num_nodes = 80;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (const Hops k : {1u, 2u, 3u}) {
    const auto cover = krishna_kclusters(net.graph, k);
    const std::string err = validate_kcluster_cover(net.graph, cover);
    EXPECT_TRUE(err.empty()) << "k=" << k << ": " << err;
  }
}

TEST(KCluster, EveryNodeCovered) {
  Rng rng(1802);
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  const AdHocNetwork net = generate_network(cfg, rng);
  const auto cover = krishna_kclusters(net.graph, 2);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_FALSE(cover.clusters_of[v].empty()) << v;
  }
}

TEST(KCluster, MoreClustersThanHeadCentricClustering) {
  // Pairwise-k clusters have radius ~k/2, so covering the graph needs more
  // of them than the paper's head-centric clusters (radius k).
  Rng rng(1803);
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (const Hops k : {2u, 3u}) {
    const auto cover = krishna_kclusters(net.graph, k);
    const Clustering c = khop_clustering(net.graph, k);
    EXPECT_GE(cover.clusters.size(), c.num_clusters()) << "k=" << k;
  }
}

TEST(KCluster, RejectsBadInput) {
  EXPECT_THROW(krishna_kclusters(path_graph(3), 0), InvalidArgument);
  EXPECT_THROW(krishna_kclusters(Graph(3), 1), NotConnected);
}

TEST(KCluster, ValidatorCatchesCorruption) {
  const Graph g = path_graph(4);
  auto cover = krishna_kclusters(g, 1);
  // Inject a pair that is too far apart.
  cover.clusters[0].push_back(3);
  cover.clusters_of[3].push_back(0);
  EXPECT_FALSE(validate_kcluster_cover(g, cover).empty());
}

}  // namespace
}  // namespace khop
