// Unit tests for the k-hop core clustering variant (related-work baseline).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/cluster/core_variant.hpp"
#include "khop/cluster/validate.hpp"
#include "khop/common/error.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

Graph path_graph(std::size_t n) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(KhopCore, RunsOneRoundOnly) {
  const Clustering c = khop_core(path_graph(10), 2);
  EXPECT_EQ(c.election_rounds, 1u);
}

TEST(KhopCore, PathGraphDesignations) {
  // Path 0..5, k=1: each node designates the min id in its closed 1-ball:
  // 0->0, 1->0, 2->1, 3->2, 4->3, 5->4. Designated = {0,1,2,3,4} all heads.
  const Clustering c = khop_core(path_graph(6), 1);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(c.head_of[5], 4u);
}

TEST(KhopCore, HeadsCanBeNeighbors) {
  // Unlike the cluster algorithm, cores may be adjacent (heads 0 and 1 on
  // the path above are neighbors).
  const Graph g = path_graph(6);
  const Clustering c = khop_core(g, 1);
  bool some_adjacent_heads = false;
  for (NodeId a : c.heads) {
    for (NodeId b : c.heads) {
      if (a < b && g.has_edge(a, b)) some_adjacent_heads = true;
    }
  }
  EXPECT_TRUE(some_adjacent_heads);
}

TEST(KhopCore, StillKHopDominating) {
  Rng rng(301);
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_core(net.graph, k);
    ClusteringChecks checks;
    checks.require_khop_independent_heads = false;  // not a core property
    const std::string err = validate_clustering(net.graph, c, checks);
    EXPECT_TRUE(err.empty()) << "k=" << k << ": " << err;
  }
}

TEST(KhopCore, NeverMoreClustersThanClusterAlgorithmHasMembers) {
  // Sanity relation: core heads count >= cluster heads count (cores are a
  // denser dominating structure by construction).
  Rng rng(302);
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering core = khop_core(net.graph, k);
    const Clustering cluster = khop_clustering(net.graph, k);
    EXPECT_GE(core.heads.size(), cluster.heads.size()) << "k=" << k;
  }
}

TEST(KhopCore, RejectsBadInput) {
  EXPECT_THROW(khop_core(path_graph(4), 0), InvalidArgument);
  EXPECT_THROW(khop_core(Graph(3), 1), NotConnected);
}

}  // namespace
}  // namespace khop
