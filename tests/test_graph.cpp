// Unit tests for the CSR graph and unit-disk construction.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/common/rng.hpp"
#include "khop/graph/graph.hpp"
#include "khop/graph/metrics.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/graph/subgraph.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

Graph path_graph(std::size_t n) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(Graph, EmptyGraphHasNoEdges) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, FromEdgesBuildsSortedAdjacency) {
  const EdgeList edges{{3, 1}, {0, 3}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 2u);
}

TEST(Graph, HasEdgeIsSymmetric) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(3, EdgeList{{1, 1}}), InvalidArgument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph::from_edges(3, EdgeList{{0, 1}, {1, 0}}),
               InvalidArgument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph::from_edges(2, EdgeList{{0, 5}}), InvalidArgument);
}

TEST(Graph, RejectsOutOfRangeQueries) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)g.neighbors(3), InvalidArgument);
  EXPECT_THROW((void)g.degree(9), InvalidArgument);
}

TEST(Graph, EdgeListRoundTrips) {
  const EdgeList edges{{0, 1}, {1, 2}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const auto out = g.edge_list();
  EXPECT_EQ(out, (EdgeList{{0, 1}, {0, 3}, {1, 2}}));
}

TEST(Graph, WithoutNodeIsolatesIt) {
  const Graph g = path_graph(4);  // 0-1-2-3
  const Graph h = g.without_node(1);
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.degree(1), 0u);
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 1));
}

TEST(DegreeStats, PathGraph) {
  const auto s = degree_stats(path_graph(4));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0 / 4.0);
}

TEST(UnitDisk, PairWithinRadiusIsConnected) {
  const std::vector<Point2> pts{{0, 0}, {3, 4}, {10, 10}};
  const Graph g = build_unit_disk_graph(pts, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));    // distance exactly 5
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(UnitDisk, MatchesBruteForce) {
  Rng rng(77);
  std::vector<Point2> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const double r = 14.0;
  const Graph g = build_unit_disk_graph(pts, r);
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v = 0; v < pts.size(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(g.has_edge(u, v), distance_sq(pts[u], pts[v]) <= r * r)
          << "pair " << u << "," << v;
    }
  }
}

TEST(SpatialGrid, WithinRadiusSortedAndExcludesSelf) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {2, 0}, {0.5, 0.5}};
  const SpatialGrid grid(pts, 1.2);
  const auto near0 = grid.within_radius(0);
  ASSERT_EQ(near0.size(), 2u);
  EXPECT_EQ(near0[0], 1u);
  EXPECT_EQ(near0[1], 3u);
}

TEST(SpatialGrid, CellCountCappedForTinyRadius) {
  // A radius of 1e-8 over a 100-unit spread would naively allocate ~1e20
  // cells; the grid must cap its cell count (enlarged cells, same answers).
  Rng rng(78);
  std::vector<Point2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const Graph g = build_unit_disk_graph(pts, 1e-8);
  EXPECT_EQ(g.num_edges(), 0u);
  const SpatialGrid grid(pts, 1e-8);
  EXPECT_EQ(grid.count_within_radius(0), 0u);

  // Near-collinear spread: the flat dimension floors at one row, so the
  // cap must come from enlarging cells along the long axis alone.
  std::vector<Point2> line;
  for (int i = 0; i < 1000; ++i) {
    line.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 1e-6)});
  }
  const Graph lg = build_unit_disk_graph(line, 1e-15);
  EXPECT_EQ(lg.num_edges(), 0u);
}

TEST(SpatialGrid, CountMatchesListLength) {
  Rng rng(79);
  std::vector<Point2> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const SpatialGrid grid(pts, 12.0);
  for (NodeId u = 0; u < pts.size(); ++u) {
    EXPECT_EQ(grid.count_within_radius(u), grid.within_radius(u).size());
  }
}

TEST(Graph, FromCsrMatchesFromEdges) {
  Rng rng(81);
  std::vector<Point2> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const Graph via_edges = reference::build_unit_disk_graph(pts, 15.0);
  std::vector<std::size_t> offsets(via_edges.num_nodes() + 1, 0);
  std::vector<NodeId> adjacency;
  for (NodeId u = 0; u < via_edges.num_nodes(); ++u) {
    const auto row = via_edges.neighbors(u);
    adjacency.insert(adjacency.end(), row.begin(), row.end());
    offsets[u + 1] = adjacency.size();
  }
  const Graph via_csr = Graph::from_csr(std::move(offsets),
                                        std::move(adjacency));
  EXPECT_EQ(via_csr.num_nodes(), via_edges.num_nodes());
  EXPECT_EQ(via_csr.num_edges(), via_edges.num_edges());
  EXPECT_EQ(via_csr.edge_list(), via_edges.edge_list());
}

TEST(Graph, FromCsrRejectsInvalidInput) {
  // offsets must be present, anchored, and monotone.
  EXPECT_THROW(Graph::from_csr({}, {}), InvalidArgument);
  EXPECT_THROW(Graph::from_csr({1, 2}, {0}), InvalidArgument);
  EXPECT_THROW(Graph::from_csr({0, 1}, {0, 1}), InvalidArgument);
  EXPECT_THROW(Graph::from_csr({0, 2, 1, 4}, {1, 2, 0, 0}), InvalidArgument);
  // Unsorted row / duplicate / self-loop / asymmetry.
  EXPECT_THROW(Graph::from_csr({0, 2, 3, 4}, {2, 1, 0, 0}), InvalidArgument);
  EXPECT_THROW(Graph::from_csr({0, 2, 2, 2}, {1, 1}), InvalidArgument);
  EXPECT_THROW(Graph::from_csr({0, 1, 2}, {0, 1}), InvalidArgument);
  EXPECT_THROW(Graph::from_csr({0, 1, 2, 3}, {1, 0, 0}), InvalidArgument);
  // Valid two-node graph passes.
  const Graph ok = Graph::from_csr({0, 1, 2}, {1, 0});
  EXPECT_TRUE(ok.has_edge(0, 1));
}

TEST(Graph, RejectsNodeCountAtIdSpaceLimit) {
  // n >= kInvalidNode must be rejected *before* any O(n) allocation: at the
  // limit the offsets array alone would be ~34 GB.
  const auto too_big = static_cast<std::size_t>(kInvalidNode);
  EXPECT_THROW(Graph{too_big}, InvalidArgument);
  EXPECT_THROW(Graph{too_big + 1}, InvalidArgument);
  EXPECT_THROW(Graph::from_edges(too_big, {}), InvalidArgument);
  // (from_csr's guard is the same check; materializing a 2^32-entry offsets
  // vector just to watch it throw would itself allocate 34 GB, so it is not
  // exercised here.)
}

TEST(UnitDisk, StreamedBuildMatchesReferenceEdgeListBuild) {
  Rng rng(83);
  // Uniform spread, coincident duplicates, and a near-collinear strip: the
  // streamed CSR path must reproduce the edge-list oracle bit-for-bit.
  std::vector<std::vector<Point2>> sets;
  sets.emplace_back();
  for (int i = 0; i < 300; ++i) {
    sets.back().push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  sets.emplace_back(50, Point2{5.0, 5.0});  // all coincident
  sets.emplace_back();
  for (int i = 0; i < 200; ++i) {
    sets.back().push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 1e-6)});
  }
  SpatialGrid grid;  // reused across sets: rebuild() must re-bind cleanly
  ThreadPool pool(2);
  for (const auto& pts : sets) {
    for (const double radius : {0.5, 8.0, 200.0}) {
      const Graph want = reference::build_unit_disk_graph(pts, radius);
      const Graph serial = build_unit_disk_graph_streamed(pts, radius, grid);
      EXPECT_EQ(serial.edge_list(), want.edge_list());
      EXPECT_EQ(serial.num_nodes(), want.num_nodes());
      const Graph parallel =
          build_unit_disk_graph_streamed(pts, radius, grid, &pool);
      EXPECT_EQ(parallel.edge_list(), want.edge_list());
      const Graph wrapper = build_unit_disk_graph(pts, radius);
      EXPECT_EQ(wrapper.edge_list(), want.edge_list());
    }
  }
}

TEST(SpatialGrid, CellCapAndDegenerateRadiiAtLargeN) {
  // The PR 2 cell-count cap, exercised above 10^4 points: a micro radius
  // over a 100-unit spread must still allocate O(n) cells and answer
  // queries correctly.
  Rng rng(85);
  std::vector<Point2> pts;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  SpatialGrid grid(pts, 1e-9);
  EXPECT_LE(grid.num_cells(), 4 * n + 1024);
  EXPECT_EQ(grid.num_points(), n);
  for (NodeId u = 0; u < 64; ++u) {
    EXPECT_EQ(grid.count_within_radius(u), 0u);
  }

  // Coincident points at scale: everyone sees everyone (one overfull cell).
  const std::vector<Point2> same(15000, Point2{1.0, 1.0});
  grid.rebuild(same, 0.5);
  EXPECT_EQ(grid.count_within_radius(0), same.size() - 1);
  EXPECT_EQ(grid.count_within_radius(7777), same.size() - 1);

  // A rebuild back to the sparse set matches a fresh grid's answers.
  grid.rebuild(pts, 2.0);
  const SpatialGrid fresh(pts, 2.0);
  for (NodeId u = 0; u < 200; ++u) {
    EXPECT_EQ(grid.within_radius(u), fresh.within_radius(u));
  }
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = Graph::from_edges(
      5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3}});
  const auto sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // (1,2),(2,3),(1,3)
  EXPECT_EQ(sub.original_ids, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(sub.new_id[0], kInvalidNode);
  EXPECT_EQ(sub.new_id[2], 1u);
}

TEST(InducedSubgraph, RequiresSortedUniqueInput) {
  const Graph g = path_graph(4);
  EXPECT_THROW(induced_subgraph(g, {2, 1}), InvalidArgument);
  EXPECT_THROW(induced_subgraph(g, {1, 1}), InvalidArgument);
}

}  // namespace
}  // namespace khop
