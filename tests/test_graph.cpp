// Unit tests for the CSR graph and unit-disk construction.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/common/rng.hpp"
#include "khop/graph/graph.hpp"
#include "khop/graph/metrics.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/graph/subgraph.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

Graph path_graph(std::size_t n) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(Graph, EmptyGraphHasNoEdges) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, FromEdgesBuildsSortedAdjacency) {
  const EdgeList edges{{3, 1}, {0, 3}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 2u);
}

TEST(Graph, HasEdgeIsSymmetric) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(3, EdgeList{{1, 1}}), InvalidArgument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph::from_edges(3, EdgeList{{0, 1}, {1, 0}}),
               InvalidArgument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph::from_edges(2, EdgeList{{0, 5}}), InvalidArgument);
}

TEST(Graph, RejectsOutOfRangeQueries) {
  const Graph g = path_graph(3);
  EXPECT_THROW((void)g.neighbors(3), InvalidArgument);
  EXPECT_THROW((void)g.degree(9), InvalidArgument);
}

TEST(Graph, EdgeListRoundTrips) {
  const EdgeList edges{{0, 1}, {1, 2}, {0, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const auto out = g.edge_list();
  EXPECT_EQ(out, (EdgeList{{0, 1}, {0, 3}, {1, 2}}));
}

TEST(Graph, WithoutNodeIsolatesIt) {
  const Graph g = path_graph(4);  // 0-1-2-3
  const Graph h = g.without_node(1);
  EXPECT_EQ(h.num_nodes(), 4u);
  EXPECT_EQ(h.degree(1), 0u);
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 1));
}

TEST(DegreeStats, PathGraph) {
  const auto s = degree_stats(path_graph(4));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0 / 4.0);
}

TEST(UnitDisk, PairWithinRadiusIsConnected) {
  const std::vector<Point2> pts{{0, 0}, {3, 4}, {10, 10}};
  const Graph g = build_unit_disk_graph(pts, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));    // distance exactly 5
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(UnitDisk, MatchesBruteForce) {
  Rng rng(77);
  std::vector<Point2> pts;
  for (int i = 0; i < 120; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const double r = 14.0;
  const Graph g = build_unit_disk_graph(pts, r);
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v = 0; v < pts.size(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(g.has_edge(u, v), distance_sq(pts[u], pts[v]) <= r * r)
          << "pair " << u << "," << v;
    }
  }
}

TEST(SpatialGrid, WithinRadiusSortedAndExcludesSelf) {
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {2, 0}, {0.5, 0.5}};
  const SpatialGrid grid(pts, 1.2);
  const auto near0 = grid.within_radius(0);
  ASSERT_EQ(near0.size(), 2u);
  EXPECT_EQ(near0[0], 1u);
  EXPECT_EQ(near0[1], 3u);
}

TEST(SpatialGrid, CellCountCappedForTinyRadius) {
  // A radius of 1e-8 over a 100-unit spread would naively allocate ~1e20
  // cells; the grid must cap its cell count (enlarged cells, same answers).
  Rng rng(78);
  std::vector<Point2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const Graph g = build_unit_disk_graph(pts, 1e-8);
  EXPECT_EQ(g.num_edges(), 0u);
  const SpatialGrid grid(pts, 1e-8);
  EXPECT_EQ(grid.count_within_radius(0), 0u);

  // Near-collinear spread: the flat dimension floors at one row, so the
  // cap must come from enlarging cells along the long axis alone.
  std::vector<Point2> line;
  for (int i = 0; i < 1000; ++i) {
    line.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 1e-6)});
  }
  const Graph lg = build_unit_disk_graph(line, 1e-15);
  EXPECT_EQ(lg.num_edges(), 0u);
}

TEST(SpatialGrid, CountMatchesListLength) {
  Rng rng(79);
  std::vector<Point2> pts;
  for (int i = 0; i < 150; ++i) {
    pts.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const SpatialGrid grid(pts, 12.0);
  for (NodeId u = 0; u < pts.size(); ++u) {
    EXPECT_EQ(grid.count_within_radius(u), grid.within_radius(u).size());
  }
}

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  const Graph g = Graph::from_edges(
      5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3}});
  const auto sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // (1,2),(2,3),(1,3)
  EXPECT_EQ(sub.original_ids, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(sub.new_id[0], kInvalidNode);
  EXPECT_EQ(sub.new_id[2], 1u);
}

TEST(InducedSubgraph, RequiresSortedUniqueInput) {
  const Graph g = path_graph(4);
  EXPECT_THROW(induced_subgraph(g, {2, 1}), InvalidArgument);
  EXPECT_THROW(induced_subgraph(g, {1, 1}), InvalidArgument);
}

}  // namespace
}  // namespace khop
