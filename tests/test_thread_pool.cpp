// Unit tests for the worker pool and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), InvalidArgument);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Write-to-own-slot results must be identical for 1 and 8 threads.
  const std::size_t n = 500;
  std::vector<double> a(n), b(n);
  {
    ThreadPool pool(1);
    parallel_for(pool, n, [&](std::size_t i) {
      a[i] = static_cast<double>(i) * 1.5;
    });
  }
  {
    ThreadPool pool(8);
    parallel_for(pool, n, [&](std::size_t i) {
      b[i] = static_cast<double>(i) * 1.5;
    });
  }
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, MoreItemsThanChunks) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  parallel_for(pool, 10000, [&](std::size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 10000ull * 9999ull / 2ull);
}

}  // namespace
}  // namespace khop
