// Unit tests for backbone assembly across all five paper pipelines, and the
// Theorem-2 validator.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/gateway/backbone.hpp"
#include "khop/gateway/validate.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

TEST(PipelineName, AllNamed) {
  EXPECT_EQ(pipeline_name(Pipeline::kNcMesh), "NC-Mesh");
  EXPECT_EQ(pipeline_name(Pipeline::kAcMesh), "AC-Mesh");
  EXPECT_EQ(pipeline_name(Pipeline::kNcLmst), "NC-LMST");
  EXPECT_EQ(pipeline_name(Pipeline::kAcLmst), "AC-LMST");
  EXPECT_EQ(pipeline_name(Pipeline::kGmst), "G-MST");
}

TEST(Backbone, MaskAndRolesConsistent) {
  Rng rng(801);
  GeneratorConfig cfg;
  cfg.num_nodes = 80;
  const AdHocNetwork net = generate_network(cfg, rng);
  const Clustering c = khop_clustering(net.graph, 2);
  const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);

  const auto mask = b.cds_mask(net.num_nodes());
  const auto roles = b.roles(net.num_nodes());
  std::size_t heads = 0, gws = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (roles[v] == NodeRole::kClusterhead) {
      ++heads;
      EXPECT_TRUE(mask[v]);
    } else if (roles[v] == NodeRole::kGateway) {
      ++gws;
      EXPECT_TRUE(mask[v]);
    } else {
      EXPECT_FALSE(mask[v]);
    }
  }
  EXPECT_EQ(heads, b.heads.size());
  EXPECT_EQ(gws, b.gateways.size());
  EXPECT_EQ(b.cds_size(), heads + gws);
}

TEST(Backbone, AllPipelinesProduceValidConnectedBackbones) {
  Rng rng(802);
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    for (const Pipeline p : kAllPipelines) {
      const Backbone b = build_backbone(net.graph, c, p);
      const std::string err = validate_backbone(net.graph, b);
      EXPECT_TRUE(err.empty())
          << pipeline_name(p) << " k=" << k << ": " << err;
      EXPECT_EQ(b.pipeline, p);
      EXPECT_EQ(b.heads, c.heads);
    }
  }
}

TEST(Backbone, PaperOrderingHoldsInExpectation) {
  // On any single topology the paper's average ordering
  // NC-Mesh >= AC-Mesh >= ... may be violated by noise, but the hard
  // guarantees are: AC-* <= NC-* (selection subset) per gateway algorithm,
  // and G-MST's links = heads-1 are minimal. Averaged over a few topologies
  // the full ordering should hold.
  Rng rng(803);
  GeneratorConfig cfg;
  cfg.num_nodes = 150;
  double nc_mesh = 0.0, ac_mesh = 0.0, nc_lmst = 0.0, ac_lmst = 0.0,
         gmst = 0.0;
  const int reps = 8;
  for (int rep = 0; rep < reps; ++rep) {
    const AdHocNetwork net = generate_network(cfg, rng);
    const Clustering c = khop_clustering(net.graph, 2);
    nc_mesh += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kNcMesh).cds_size());
    ac_mesh += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kAcMesh).cds_size());
    nc_lmst += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kNcLmst).cds_size());
    ac_lmst += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kAcLmst).cds_size());
    gmst += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kGmst).cds_size());
  }
  EXPECT_LE(ac_mesh, nc_mesh);
  // AC-LMST vs NC-LMST is a statistical (not per-instance) ordering and the
  // paper reports the gap as tiny; allow small-sample noise here and leave
  // the strict comparison to the 100-trial figure benches.
  EXPECT_LE(ac_lmst, nc_lmst * 1.05);
  EXPECT_LE(nc_lmst, nc_mesh);
  EXPECT_LE(gmst, ac_lmst);
}

TEST(Backbone, ValidatorCatchesCorruption) {
  Rng rng(804);
  GeneratorConfig cfg;
  cfg.num_nodes = 60;
  const AdHocNetwork net = generate_network(cfg, rng);
  const Clustering c = khop_clustering(net.graph, 2);
  Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);
  ASSERT_TRUE(validate_backbone(net.graph, b).empty());

  // Drop all gateways: heads alone cannot stay connected (k >= 2 apart).
  Backbone broken = b;
  broken.gateways.clear();
  if (b.heads.size() > 1) {
    EXPECT_FALSE(validate_backbone(net.graph, broken).empty());
  }

  // A node listed as both head and gateway must be rejected.
  Backbone dup = b;
  if (!dup.heads.empty()) {
    dup.gateways.insert(
        std::lower_bound(dup.gateways.begin(), dup.gateways.end(),
                         dup.heads[0]),
        dup.heads[0]);
    EXPECT_FALSE(validate_backbone(net.graph, dup).empty());
  }

  // Virtual links must reference heads.
  Backbone badlink = b;
  badlink.virtual_links.emplace_back(b.gateways.empty() ? 0 : b.gateways[0],
                                     b.heads[0]);
  if (!b.gateways.empty()) {
    EXPECT_FALSE(validate_backbone(net.graph, badlink).empty());
  }
}

TEST(Backbone, GmstHasMinimalLinkCount) {
  Rng rng(805);
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  const AdHocNetwork net = generate_network(cfg, rng);
  const Clustering c = khop_clustering(net.graph, 2);
  const Backbone b = build_backbone(net.graph, c, Pipeline::kGmst);
  EXPECT_EQ(b.virtual_links.size(), c.heads.size() - 1);
}

}  // namespace
}  // namespace khop
