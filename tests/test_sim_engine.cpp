// Unit tests for the synchronous message-passing engine.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/sim/engine.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

/// Floods a token from node 0 and records the round each node first saw it.
class FloodAgent : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      seen_round_ = 0;
      ctx.broadcast(1, {});
    }
  }
  void on_message(NodeContext& ctx, const Message& msg) override {
    EXPECT_EQ(msg.type, 1);
    if (seen_round_ == kUnseen) {
      seen_round_ = ctx.round();
      ctx.broadcast(1, {});
    }
  }
  bool finished() const override { return true; }

  static constexpr std::size_t kUnseen = ~std::size_t{0};
  std::size_t seen_round_ = kUnseen;
};

TEST(SimEngine, FloodArrivalEqualsHopDistance) {
  const Graph g = Graph::from_edges(
      5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<FloodAgent>(); });
  EXPECT_TRUE(engine.run(64));
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(dynamic_cast<FloodAgent&>(engine.agent(v)).seen_round_, v);
  }
}

TEST(SimEngine, CountsTransmissionsAndReceptions) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<FloodAgent>(); });
  EXPECT_TRUE(engine.run(64));
  // Every node broadcasts exactly once (3 transmissions); receptions equal
  // the sum of sender degrees: deg(0)+deg(1)+deg(2) = 1+2+1 = 4.
  EXPECT_EQ(engine.stats().transmissions, 3u);
  EXPECT_EQ(engine.stats().receptions, 4u);
}

/// Counts messages to verify inbox ordering (sender ascending).
class OrderProbe : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() != 2) {
      ctx.broadcast(7, {static_cast<std::int64_t>(ctx.id())});
    }
  }
  void on_message(NodeContext&, const Message& msg) override {
    senders.push_back(msg.sender);
  }
  std::vector<NodeId> senders;
};

TEST(SimEngine, InboxSortedBySender) {
  // Star: node 2 hears 0,1,3,4 in one round; order must be ascending.
  const Graph g =
      Graph::from_edges(5, EdgeList{{2, 0}, {2, 1}, {2, 3}, {2, 4}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<OrderProbe>(); });
  EXPECT_TRUE(engine.run(8));
  const auto& probe = dynamic_cast<OrderProbe&>(engine.agent(2));
  EXPECT_EQ(probe.senders, (std::vector<NodeId>{0, 1, 3, 4}));
}

/// Sends one addressed message over an edge.
class UnicastAgent : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(1, 9, {42});
  }
  void on_message(NodeContext&, const Message& msg) override {
    got = msg.data[0];
  }
  std::int64_t got = -1;
};

TEST(SimEngine, AddressedSendReachesOnlyTarget) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {0, 2}});
  SyncEngine engine(g,
                    [](NodeId) { return std::make_unique<UnicastAgent>(); });
  EXPECT_TRUE(engine.run(8));
  EXPECT_EQ(dynamic_cast<UnicastAgent&>(engine.agent(1)).got, 42);
  EXPECT_EQ(dynamic_cast<UnicastAgent&>(engine.agent(2)).got, -1);
  EXPECT_EQ(engine.stats().transmissions, 1u);
  EXPECT_EQ(engine.stats().receptions, 1u);
}

class SendToStranger : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(2, 1, {});  // 2 is not a neighbor
  }
  void on_message(NodeContext&, const Message&) override {}
};

TEST(SimEngine, AddressedSendRequiresNeighbor) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  SyncEngine engine(
      g, [](NodeId) { return std::make_unique<SendToStranger>(); });
  EXPECT_THROW(engine.run(8), InvalidArgument);
}

/// Never finishes: engine must hit the round cap and report failure.
class Restless : public NodeAgent {
 public:
  void on_message(NodeContext&, const Message&) override {}
  bool finished() const override { return false; }
};

TEST(SimEngine, RoundCapStopsNonTerminatingProtocols) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Restless>(); });
  EXPECT_FALSE(engine.run(10));
}

TEST(SimEngine, QuiescentFromTheStart) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  // FloodAgent with no node 0... use Restless-like silent agent that is
  // finished: engine should stop immediately at round 0.
  class Silent : public NodeAgent {
   public:
    void on_message(NodeContext&, const Message&) override {}
  };
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Silent>(); });
  EXPECT_TRUE(engine.run(10));
  EXPECT_EQ(engine.stats().rounds, 0u);
}

TEST(SimEngine, PayloadWordsAccounted) {
  class Chatty : public NodeAgent {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.id() == 0) ctx.broadcast(1, {1, 2, 3});
    }
    void on_message(NodeContext&, const Message&) override {}
  };
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Chatty>(); });
  EXPECT_TRUE(engine.run(4));
  EXPECT_EQ(engine.stats().payload_words, 3u);
}

}  // namespace
}  // namespace khop
