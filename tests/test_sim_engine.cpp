// Unit tests for the synchronous message-passing engine.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/sim/engine.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

/// Floods a token from node 0 and records the round each node first saw it.
class FloodAgent : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) {
      seen_round_ = 0;
      ctx.broadcast(1, {});
    }
  }
  void on_message(NodeContext& ctx, const Message& msg) override {
    EXPECT_EQ(msg.type, 1);
    if (seen_round_ == kUnseen) {
      seen_round_ = ctx.round();
      ctx.broadcast(1, {});
    }
  }
  bool finished() const override { return true; }

  static constexpr std::size_t kUnseen = ~std::size_t{0};
  std::size_t seen_round_ = kUnseen;
};

TEST(SimEngine, FloodArrivalEqualsHopDistance) {
  const Graph g = Graph::from_edges(
      5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<FloodAgent>(); });
  EXPECT_TRUE(engine.run(64));
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(dynamic_cast<FloodAgent&>(engine.agent(v)).seen_round_, v);
  }
}

TEST(SimEngine, CountsTransmissionsAndReceptions) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<FloodAgent>(); });
  EXPECT_TRUE(engine.run(64));
  // Every node broadcasts exactly once (3 transmissions); receptions equal
  // the sum of sender degrees: deg(0)+deg(1)+deg(2) = 1+2+1 = 4.
  EXPECT_EQ(engine.stats().transmissions, 3u);
  EXPECT_EQ(engine.stats().receptions, 4u);
}

/// Counts messages to verify inbox ordering (sender ascending).
class OrderProbe : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() != 2) {
      ctx.broadcast(7, {static_cast<std::int64_t>(ctx.id())});
    }
  }
  void on_message(NodeContext&, const Message& msg) override {
    senders.push_back(msg.sender);
  }
  std::vector<NodeId> senders;
};

TEST(SimEngine, InboxSortedBySender) {
  // Star: node 2 hears 0,1,3,4 in one round; order must be ascending.
  const Graph g =
      Graph::from_edges(5, EdgeList{{2, 0}, {2, 1}, {2, 3}, {2, 4}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<OrderProbe>(); });
  EXPECT_TRUE(engine.run(8));
  const auto& probe = dynamic_cast<OrderProbe&>(engine.agent(2));
  EXPECT_EQ(probe.senders, (std::vector<NodeId>{0, 1, 3, 4}));
}

/// Sends one addressed message over an edge.
class UnicastAgent : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(1, 9, {42});
  }
  void on_message(NodeContext&, const Message& msg) override {
    got = msg.data[0];
  }
  std::int64_t got = -1;
};

TEST(SimEngine, AddressedSendReachesOnlyTarget) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {0, 2}});
  SyncEngine engine(g,
                    [](NodeId) { return std::make_unique<UnicastAgent>(); });
  EXPECT_TRUE(engine.run(8));
  EXPECT_EQ(dynamic_cast<UnicastAgent&>(engine.agent(1)).got, 42);
  EXPECT_EQ(dynamic_cast<UnicastAgent&>(engine.agent(2)).got, -1);
  EXPECT_EQ(engine.stats().transmissions, 1u);
  EXPECT_EQ(engine.stats().receptions, 1u);
}

class SendToStranger : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(2, 1, {});  // 2 is not a neighbor
  }
  void on_message(NodeContext&, const Message&) override {}
};

TEST(SimEngine, AddressedSendRequiresNeighbor) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  SyncEngine engine(
      g, [](NodeId) { return std::make_unique<SendToStranger>(); });
  EXPECT_THROW(engine.run(8), InvalidArgument);
}

/// Never finishes: engine must hit the round cap and report failure.
class Restless : public NodeAgent {
 public:
  void on_message(NodeContext&, const Message&) override {}
  bool finished() const override { return false; }
};

TEST(SimEngine, RoundCapStopsNonTerminatingProtocols) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Restless>(); });
  EXPECT_FALSE(engine.run(10));
}

TEST(SimEngine, QuiescentFromTheStart) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  // FloodAgent with no node 0... use Restless-like silent agent that is
  // finished: engine should stop immediately at round 0.
  class Silent : public NodeAgent {
   public:
    void on_message(NodeContext&, const Message&) override {}
  };
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Silent>(); });
  EXPECT_TRUE(engine.run(10));
  EXPECT_EQ(engine.stats().rounds, 0u);
}

TEST(SimEngine, ParallelRunMatchesSerial) {
  const Graph g = Graph::from_edges(
      6, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}});
  const auto factory = [](NodeId) { return std::make_unique<FloodAgent>(); };

  SyncEngine serial(g, factory);
  EXPECT_TRUE(serial.run(64));

  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    SyncEngine parallel(g, factory);
    EXPECT_TRUE(parallel.run(64, pool));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(dynamic_cast<FloodAgent&>(parallel.agent(v)).seen_round_,
                dynamic_cast<FloodAgent&>(serial.agent(v)).seen_round_)
          << "threads=" << threads << " node=" << v;
    }
    EXPECT_EQ(parallel.stats().transmissions, serial.stats().transmissions);
    EXPECT_EQ(parallel.stats().receptions, serial.stats().receptions);
    EXPECT_EQ(parallel.stats().rounds, serial.stats().rounds);
  }
}

TEST(SimEngine, ParallelAddressedSendRequiresNeighbor) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  ThreadPool pool(2);
  SyncEngine engine(
      g, [](NodeId) { return std::make_unique<SendToStranger>(); });
  EXPECT_THROW(engine.run(8, pool), InvalidArgument);
}

// Regression for the pre-PR5 re-entry bug: run() reset only the round
// counter, so a second run() accumulated stats and replayed stale in-flight
// messages whose payload views pointed into never-cleared arenas.
TEST(SimEngine, RunTwiceYieldsFreshStatsAndIdenticalOutcome) {
  const Graph g = Graph::from_edges(
      5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<FloodAgent>(); });

  EXPECT_TRUE(engine.run(64));
  const SimStats first = engine.stats();
  std::vector<std::size_t> first_seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    first_seen.push_back(dynamic_cast<FloodAgent&>(engine.agent(v)).seen_round_);
  }

  EXPECT_TRUE(engine.run(64));
  EXPECT_EQ(engine.stats().rounds, first.rounds);
  EXPECT_EQ(engine.stats().transmissions, first.transmissions);
  EXPECT_EQ(engine.stats().receptions, first.receptions);
  EXPECT_EQ(engine.stats().payload_words, first.payload_words);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(dynamic_cast<FloodAgent&>(engine.agent(v)).seen_round_,
              first_seen[v])
        << "node " << v;
  }
}

TEST(SimEngine, RunTwiceRecreatesAgentsFromFactory) {
  // The second run must not see first-run agent state: a once-only sender
  // that latches would stay silent forever if agents were reused.
  class Latch : public NodeAgent {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.id() == 0 && !fired_) {
        fired_ = true;
        ctx.broadcast(1, {11});
      }
    }
    void on_message(NodeContext&, const Message& msg) override {
      got = msg.data[0];
    }
    bool fired_ = false;
    std::int64_t got = -1;
  };
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Latch>(); });
  EXPECT_TRUE(engine.run(8));
  EXPECT_EQ(dynamic_cast<Latch&>(engine.agent(1)).got, 11);
  EXPECT_TRUE(engine.run(8));
  EXPECT_EQ(dynamic_cast<Latch&>(engine.agent(1)).got, 11);
  EXPECT_EQ(engine.stats().transmissions, 1u);
}

TEST(SimEngine, PayloadWordsAccounted) {
  class Chatty : public NodeAgent {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.id() == 0) ctx.broadcast(1, {1, 2, 3});
    }
    void on_message(NodeContext&, const Message&) override {}
  };
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  SyncEngine engine(g, [](NodeId) { return std::make_unique<Chatty>(); });
  EXPECT_TRUE(engine.run(4));
  EXPECT_EQ(engine.stats().payload_words, 3u);
}

// Regression for the pre-PR5 capacity-stranding bug: reserve_block advanced
// a monotone cursor past any block that could not fit the current payload
// and never revisited it, so an alternating large/small intern pattern grew
// the block list roughly one block per intern (each abandoned with most of
// its capacity stranded). First-fit must keep the block count near the
// volume bound total_words / kMinBlockWords.
TEST(PayloadArena, AlternatingInternsKeepBlockCountBounded) {
  PayloadArena arena;
  const std::vector<std::int64_t> large(4000, 7);
  const std::vector<std::int64_t> small(200, 9);
  const std::size_t pairs = 200;
  std::vector<PayloadView> views;
  for (std::size_t i = 0; i < pairs; ++i) {
    views.push_back(arena.intern(large));
    views.push_back(arena.intern(small));
  }
  // Volume bound: 200 * 4200 words / 4096 words-per-block ~ 206 blocks, plus
  // slack for per-block fragmentation. The stranding implementation
  // allocated ~2 blocks per pair (~400).
  EXPECT_LE(arena.num_blocks(), 230u);
  // Stability: every handed-out view still reads its own words.
  for (std::size_t i = 0; i < views.size(); ++i) {
    const std::int64_t expect = (i % 2 == 0) ? 7 : 9;
    ASSERT_EQ(views[i].size(), (i % 2 == 0) ? large.size() : small.size());
    EXPECT_EQ(views[i][0], expect);
    EXPECT_EQ(views[i][views[i].size() - 1], expect);
  }
}

TEST(PayloadArena, ClearRecyclesAllBlocks) {
  PayloadArena arena;
  const std::vector<std::int64_t> large(3000, 1);
  const std::vector<std::int64_t> small(50, 2);
  const auto fill = [&] {
    for (std::size_t i = 0; i < 40; ++i) {
      arena.intern(large);
      arena.intern(small);
    }
  };
  fill();
  const std::size_t after_first = arena.num_blocks();
  // Steady-state reuse: identical rounds after clear() must not allocate
  // any further blocks.
  for (int round = 0; round < 5; ++round) {
    arena.clear();
    fill();
    EXPECT_EQ(arena.num_blocks(), after_first) << "round " << round;
  }
}

TEST(PayloadArena, InternedViewsSurviveMixedSizes) {
  PayloadArena arena;
  std::vector<std::pair<PayloadView, std::int64_t>> views;
  for (std::int64_t i = 0; i < 500; ++i) {
    const std::size_t len = 1 + static_cast<std::size_t>((i * 37) % 600);
    const std::vector<std::int64_t> words(len, i);
    views.emplace_back(arena.intern(words), i);
  }
  for (const auto& [view, tag] : views) {
    for (const std::int64_t w : view) ASSERT_EQ(w, tag);
  }
}

}  // namespace
}  // namespace khop
