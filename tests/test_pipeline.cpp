// Unit tests for the umbrella public API (khop/core/pipeline.hpp).
#include <gtest/gtest.h>

#include "khop/common/error.hpp"
#include "khop/core/pipeline.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

AdHocNetwork make_net(std::uint64_t seed, std::size_t n = 100) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  Rng rng(seed);
  return generate_network(cfg, rng);
}

TEST(Pipeline, DefaultOptionsProduceValidatedBackbone) {
  const AdHocNetwork net = make_net(1301);
  const auto r = build_connected_clustering(net);
  EXPECT_FALSE(r.clustering.heads.empty());
  EXPECT_EQ(r.cds.size(),
            r.backbone.heads.size() + r.backbone.gateways.size());
  EXPECT_EQ(r.backbone.pipeline, Pipeline::kAcLmst);
}

TEST(Pipeline, EveryPipelineAndKCombination) {
  const AdHocNetwork net = make_net(1302, 90);
  for (Hops k = 1; k <= 3; ++k) {
    for (const Pipeline p : kAllPipelines) {
      PipelineOptions opts;
      opts.k = k;
      opts.pipeline = p;
      // validate = true throws on any Theorem 1/2 violation.
      const auto r = build_connected_clustering(net, opts);
      EXPECT_GT(r.cds.size(), 0u) << pipeline_name(p) << " k=" << k;
    }
  }
}

TEST(Pipeline, EnergyPriorityRequiresState) {
  const AdHocNetwork net = make_net(1303, 60);
  PipelineOptions opts;
  opts.priority = PriorityRule::kHighestEnergy;
  EXPECT_THROW(build_connected_clustering(net, opts), InvalidArgument);

  EnergyState energy(EnergyConfig{}, net.num_nodes());
  const auto r = build_connected_clustering(net, opts, &energy);
  EXPECT_FALSE(r.clustering.heads.empty());
}

TEST(Pipeline, RandomTimerRequiresRng) {
  const AdHocNetwork net = make_net(1304, 60);
  PipelineOptions opts;
  opts.priority = PriorityRule::kRandomTimer;
  EXPECT_THROW(build_connected_clustering(net, opts), InvalidArgument);

  Rng rng(9);
  const auto r = build_connected_clustering(net, opts, nullptr, &rng);
  EXPECT_FALSE(r.clustering.heads.empty());
}

TEST(Pipeline, GraphOverloadMatchesNetworkOverload) {
  const AdHocNetwork net = make_net(1305, 70);
  const auto a = build_connected_clustering(net);
  const auto b = build_connected_clustering(net.graph);
  EXPECT_EQ(a.backbone.heads, b.backbone.heads);
  EXPECT_EQ(a.backbone.gateways, b.backbone.gateways);
}

TEST(Pipeline, AffiliationRuleChangesMembershipNotValidity) {
  const AdHocNetwork net = make_net(1306, 80);
  for (const AffiliationRule rule :
       {AffiliationRule::kIdBased, AffiliationRule::kDistanceBased,
        AffiliationRule::kSizeBased}) {
    PipelineOptions opts;
    opts.k = 2;
    opts.affiliation = rule;
    const auto r = build_connected_clustering(net, opts);
    EXPECT_FALSE(r.clustering.heads.empty());
  }
}

}  // namespace
}  // namespace khop
