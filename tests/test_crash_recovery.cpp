// Crash-recovery property test: for EVERY named crash point, at several
// occurrence depths, across multiple (n, k, pipeline) configurations, a
// DurableChurnEngine that dies mid-run recovers from disk and — after
// resuming the same trace from the recovered cursor — converges to state
// bit-identical to an engine that never crashed. The crash is modelled by
// CrashInjected unwinding the whole stack: buffered WAL bytes are lost,
// torn files stay behind, and the recovered process must cope with both.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/dynamic/persist/crash_point.hpp"
#include "khop/dynamic/persist/store.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

namespace fs = std::filesystem;
using persist::CrashInjected;
using persist::CrashPoints;
using persist::DurabilityOptions;
using persist::DurableChurnEngine;
using persist::kCrashPointNames;
using persist::RecoveryReport;

Graph make_network(std::uint64_t seed, std::size_t n, double degree = 8.0) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  Rng rng(seed);
  return generate_network(cfg, rng).graph;
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) {
    path = (fs::temp_directory_path() / ("khop_crash_" + name)).string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// Canonical view of the link store: sorted by endpoint pair, full payload.
/// (The live vector's order depends on upsert/swap-pop history, which a
/// recovered engine legitimately does not share.)
std::vector<VirtualLink> sorted_links(const VirtualLinkMap& m) {
  std::vector<VirtualLink> out = m.all();
  std::sort(out.begin(), out.end(),
            [](const VirtualLink& a, const VirtualLink& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  return out;
}

/// Bit-exact comparison of every maintained public structure plus the
/// cumulative stats (audits excluded: the oracle and the recovered engine
/// audit at different times by design).
void expect_identical(const ChurnEngine& got, const ChurnEngine& want,
                      const std::string& label) {
  EXPECT_EQ(got.clustering().heads, want.clustering().heads) << label;
  EXPECT_EQ(got.clustering().head_of, want.clustering().head_of) << label;
  EXPECT_EQ(got.clustering().dist_to_head, want.clustering().dist_to_head)
      << label;
  EXPECT_EQ(got.backbone().heads, want.backbone().heads) << label;
  EXPECT_EQ(got.backbone().gateways, want.backbone().gateways) << label;
  EXPECT_EQ(got.backbone().virtual_links, want.backbone().virtual_links)
      << label;
  EXPECT_EQ(got.num_components(), want.num_components()) << label;

  const std::vector<VirtualLink> gl = sorted_links(got.virtual_links());
  const std::vector<VirtualLink> wl = sorted_links(want.virtual_links());
  ASSERT_EQ(gl.size(), wl.size()) << label;
  for (std::size_t i = 0; i < gl.size(); ++i) {
    EXPECT_EQ(gl[i].u, wl[i].u) << label;
    EXPECT_EQ(gl[i].v, wl[i].v) << label;
    EXPECT_EQ(gl[i].hops, wl[i].hops) << label;
    EXPECT_EQ(gl[i].path, wl[i].path) << label;
  }

  EXPECT_EQ(got.stats().events, want.stats().events) << label;
  EXPECT_EQ(got.stats().fails, want.stats().fails) << label;
  EXPECT_EQ(got.stats().joins, want.stats().joins) << label;
  EXPECT_EQ(got.stats().link_downs, want.stats().link_downs) << label;
  EXPECT_EQ(got.stats().link_ups, want.stats().link_ups) << label;
  EXPECT_EQ(got.stats().orphans, want.stats().orphans) << label;
  EXPECT_EQ(got.stats().reaffiliations, want.stats().reaffiliations) << label;
  EXPECT_EQ(got.stats().new_heads, want.stats().new_heads) << label;
  EXPECT_EQ(got.stats().heads_resweeped, want.stats().heads_resweeped)
      << label;
  EXPECT_EQ(got.stats().touched_nodes, want.stats().touched_nodes) << label;
  EXPECT_EQ(got.stats().partitions, want.stats().partitions) << label;
  EXPECT_EQ(got.stats().merges, want.stats().merges) << label;
}

/// How deep into the run the point's N-th occurrence lands. WAL points see
/// one occurrence per append, flush points one per flush_every appends,
/// snapshot points one per snapshot_every events — different depths keep
/// the crash inside a 1000-event trace for every point.
std::uint64_t deep_countdown(const std::string& point) {
  if (point == "wal.flush") return 100;          // flush #100 ≈ event 400
  if (point.rfind("wal.", 0) == 0) return 700;   // event ≈ 700
  return 7;                                      // snapshot #7 = cursor 448
}

struct CrashConfig {
  std::size_t n;
  Hops k;
  Pipeline pipeline;
  std::uint64_t seed;
  const char* tag;
};

void run_crash_matrix(const CrashConfig& cfg) {
  const Graph g = make_network(cfg.seed, cfg.n);
  ChurnTraceConfig tcfg;
  tcfg.num_events = 1000;
  const ChurnTrace trace = ChurnTrace::generate(g, tcfg, cfg.seed + 1);

  // The oracle: the same trace applied with no crash and no persistence.
  ChurnEngine oracle(g, cfg.k, cfg.pipeline);
  for (const ChurnEvent& e : trace.events()) oracle.apply(e);

  DurabilityOptions dopts;
  dopts.snapshot_every = 64;
  dopts.wal_flush_every = 4;
  dopts.keep_snapshots = 2;

  for (const char* point : kCrashPointNames) {
    for (const std::uint64_t countdown :
         {std::uint64_t{1}, deep_countdown(point)}) {
      const std::string label = std::string(cfg.tag) + "/" + point +
                                "@x" + std::to_string(countdown);
      TempDir dir(std::string(cfg.tag) + "_" + point + "_" +
                  std::to_string(countdown));

      bool crashed = false;
      std::uint64_t crash_cursor = 0;
      {
        // Seed the directory BEFORE arming: the initial snapshot is the
        // pre-crash era, the armed point fires somewhere mid-trace.
        DurableChurnEngine durable = DurableChurnEngine::create(
            g, cfg.k, cfg.pipeline, dir.path, dopts);
        CrashPoints::global().arm(point, countdown);
        try {
          for (const ChurnEvent& e : trace.events()) durable.apply(e);
        } catch (const CrashInjected&) {
          crashed = true;
          crash_cursor = durable.cursor();
        }
        CrashPoints::global().disarm();
        // `durable` dies here WITHOUT flushing: unflushed WAL records are
        // gone, exactly as in a real crash.
      }
      ASSERT_TRUE(crashed) << label << ": the armed point never fired";

      RecoveryReport rep;
      DurableChurnEngine recovered =
          DurableChurnEngine::recover(dir.path, &rep, dopts);
      EXPECT_TRUE(rep.used_snapshot) << label;
      // Recovery can only lose the unflushed tail, never invent progress.
      EXPECT_LE(rep.cursor, crash_cursor + 1) << label;
      ASSERT_LE(rep.cursor, trace.size()) << label;

      for (std::size_t i = rep.cursor; i < trace.size(); ++i) {
        recovered.apply(trace.events()[i]);
      }
      expect_identical(recovered.engine(), oracle, label);
      EXPECT_EQ(recovered.engine().audit(), "") << label;
    }
  }
}

TEST(CrashRecovery, EveryPointRecoversBitExactAcMesh) {
  run_crash_matrix({110, 2, Pipeline::kAcMesh, 7001, "acmesh"});
}

TEST(CrashRecovery, EveryPointRecoversBitExactNcLmst) {
  run_crash_matrix({130, 2, Pipeline::kNcLmst, 7002, "nclmst"});
}

TEST(CrashRecovery, CrashPointCountdownSemantics) {
  CrashPoints& cp = CrashPoints::global();
  cp.arm("wal.append", 3);
  EXPECT_FALSE(cp.fires("wal.append"));
  EXPECT_FALSE(cp.fires("snapshot.begin"));  // other points never fire
  EXPECT_FALSE(cp.fires("wal.append"));
  EXPECT_TRUE(cp.fires("wal.append"));   // third occurrence
  EXPECT_FALSE(cp.fires("wal.append"));  // firing disarms
  EXPECT_FALSE(cp.armed());

  cp.arm("wal.flush");
  EXPECT_THROW(cp.hit("wal.flush"), CrashInjected);
  cp.disarm();
  EXPECT_NO_THROW(cp.hit("wal.flush"));
}

/// A second recovery of the same directory — with no events in between —
/// must land on the same cursor and the same state (recovery is
/// deterministic and repeatable, not consuming).
TEST(CrashRecovery, RecoveryIsRepeatable) {
  const Graph g = make_network(7003, 90);
  ChurnTraceConfig tcfg;
  tcfg.num_events = 500;
  const ChurnTrace trace = ChurnTrace::generate(g, tcfg, 7004);
  TempDir dir("repeatable");

  DurabilityOptions dopts;
  dopts.snapshot_every = 64;
  dopts.wal_flush_every = 4;
  {
    DurableChurnEngine durable =
        DurableChurnEngine::create(g, 2, Pipeline::kAcMesh, dir.path, dopts);
    CrashPoints::global().arm("wal.torn", 300);
    try {
      for (const ChurnEvent& e : trace.events()) durable.apply(e);
      FAIL() << "expected CrashInjected";
    } catch (const CrashInjected&) {
    }
    CrashPoints::global().disarm();
  }

  RecoveryReport rep1;
  DurableChurnEngine first = DurableChurnEngine::recover(dir.path, &rep1);
  RecoveryReport rep2;
  DurableChurnEngine second = DurableChurnEngine::recover(dir.path, &rep2);
  EXPECT_EQ(rep1.cursor, rep2.cursor);
  EXPECT_EQ(rep1.snapshot_cursor, rep2.snapshot_cursor);
  EXPECT_EQ(rep1.wal_tail, rep2.wal_tail);
  expect_identical(second.engine(), first.engine(), "repeat");
}

}  // namespace
}  // namespace khop
