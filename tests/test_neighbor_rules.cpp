// Unit tests for phase 1 of the localized solution: NC, A-NCR and the
// Wu-Lou 2.5-hop rule, plus the Theorem-1 connectivity guarantee.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/components.hpp"
#include "khop/nbr/cluster_graph.hpp"
#include "khop/nbr/neighbor_rules.hpp"
#include "khop/nbr/reference.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

// Three-cluster k=1 topology: head 0 owns {0,3,4}; heads 1 and 2 are leaf
// clusters attached through 0's members: 1-3-0-4-2 with 0 adjacent to 3,4.
Graph tri_cluster_graph() {
  return Graph::from_edges(5,
                           EdgeList{{1, 3}, {3, 4}, {4, 2}, {0, 3}, {0, 4}});
}

TEST(AdjacentClusters, DetectedFromCrossEdges) {
  const Graph g = tri_cluster_graph();
  const Clustering c = khop_clustering(g, 1);
  ASSERT_EQ(c.heads, (std::vector<NodeId>{0, 1, 2}));
  const auto pairs = adjacent_cluster_pairs(g, c);
  // Clusters (0,1) via edge 1-3 and (0,2) via edge 4-2; never (1,2).
  EXPECT_EQ(pairs,
            (std::vector<std::pair<std::uint32_t, std::uint32_t>>{{0, 1},
                                                                  {0, 2}}));
}

TEST(ANcr, SelectsOnlyAdjacentHeads) {
  const Graph g = tri_cluster_graph();
  const Clustering c = khop_clustering(g, 1);
  const auto sel = select_neighbors(g, c, NeighborRule::kAdjacent);
  EXPECT_EQ(sel.selected[0], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(sel.selected[1], (std::vector<NodeId>{0}));
  EXPECT_EQ(sel.selected[2], (std::vector<NodeId>{0}));
  EXPECT_EQ(sel.head_pairs,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {0, 2}}));
}

TEST(Nc, SelectsAllHeadsWithinHorizon) {
  const Graph g = tri_cluster_graph();
  const Clustering c = khop_clustering(g, 1);
  const auto sel = select_neighbors(g, c, NeighborRule::kAllWithin2k1);
  // dist(1,2) = 3 <= 2k+1 = 3, so NC also links the two leaf heads.
  EXPECT_EQ(sel.selected[1], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(sel.head_pairs,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {0, 2}, {1, 2}}));
}

TEST(WuLou, DropsThreeHopHeadWithoutNearMember) {
  const Graph g = tri_cluster_graph();
  const Clustering c = khop_clustering(g, 1);
  const auto sel = select_neighbors(g, c, NeighborRule::kWuLou25);
  // Head 1: head 0 is 2 hops (covered); head 2 is 3 hops away and cluster 2
  // has no member within 2 hops of 1 -> not covered.
  EXPECT_EQ(sel.selected[1], (std::vector<NodeId>{0}));
  EXPECT_EQ(sel.selected[2], (std::vector<NodeId>{0}));
  EXPECT_EQ(sel.head_pairs,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {0, 2}}));
}

TEST(WuLou, CoversThreeHopHeadWithNearMember) {
  // Path 0-2-3-1 with k=1: heads {0,1}, C0 = {0,2}, C1 = {1,3}.
  // dist(0,1) = 3 and member 3 of C1 is 2 hops from head 0 -> covered.
  const Graph g = Graph::from_edges(4, EdgeList{{0, 2}, {2, 3}, {3, 1}});
  const Clustering c = khop_clustering(g, 1);
  ASSERT_EQ(c.heads, (std::vector<NodeId>{0, 1}));
  const auto sel = select_neighbors(g, c, NeighborRule::kWuLou25);
  EXPECT_EQ(sel.selected[0], (std::vector<NodeId>{1}));
  EXPECT_EQ(sel.selected[1], (std::vector<NodeId>{0}));
}

TEST(WuLou, RequiresKEqualOne) {
  const Graph g = tri_cluster_graph();
  const Clustering c = khop_clustering(g, 2);
  EXPECT_THROW(select_neighbors(g, c, NeighborRule::kWuLou25),
               InvalidArgument);
}

TEST(ANcr, AdjacentHeadsAlwaysWithin2kPlus1) {
  Rng rng(501);
  GeneratorConfig cfg;
  cfg.num_nodes = 130;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    const auto sel = select_neighbors(net.graph, c, NeighborRule::kAdjacent);
    const auto d = all_pairs_hops(net.graph);
    for (const auto& [u, v] : sel.head_pairs) {
      EXPECT_GE(d[u][v], k + 1) << "k=" << k;
      EXPECT_LE(d[u][v], 2 * k + 1) << "k=" << k;
    }
  }
}

TEST(Theorem1, AdjacentClusterGraphConnected) {
  Rng rng(502);
  GeneratorConfig cfg;
  for (const std::size_t n : {50u, 100u, 150u}) {
    cfg.num_nodes = n;
    const AdHocNetwork net = generate_network(cfg, rng);
    for (Hops k = 1; k <= 4; ++k) {
      const Clustering c = khop_clustering(net.graph, k);
      EXPECT_TRUE(theorem1_holds(net.graph, c)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Theorem1, ANcrIsSubsetOfNc) {
  Rng rng(503);
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    const auto ac = select_neighbors(net.graph, c, NeighborRule::kAdjacent);
    const auto nc =
        select_neighbors(net.graph, c, NeighborRule::kAllWithin2k1);
    for (const auto& pair : ac.head_pairs) {
      EXPECT_TRUE(std::binary_search(nc.head_pairs.begin(),
                                     nc.head_pairs.end(), pair))
          << "A-NCR pair missing from NC at k=" << k;
    }
    EXPECT_LE(ac.head_pairs.size(), nc.head_pairs.size());
  }
}

TEST(SelectionGraph, MatchesAdjacentClusterGraph) {
  const Graph g = tri_cluster_graph();
  const Clustering c = khop_clustering(g, 1);
  const auto sel = select_neighbors(g, c, NeighborRule::kAdjacent);
  const Graph gsel = selection_graph(c, sel);
  const Graph gadj = adjacent_cluster_graph(g, c);
  EXPECT_EQ(gsel.edge_list(), gadj.edge_list());
  EXPECT_TRUE(is_connected(gsel));
}

// PR 4 rewrote the production rules (reached-set head scans, flat-vector
// adjacent pairs, precomputed Wu-Lou coverage marks); the preserved verbatim
// originals must agree bit-for-bit on random topologies.
TEST(NeighborOracle, ProductionMatchesReferenceOnRandomTopologies) {
  Rng rng(505);
  GeneratorConfig cfg;
  for (const std::size_t n : {60u, 110u, 160u}) {
    cfg.num_nodes = n;
    const AdHocNetwork net = generate_network(cfg, rng);
    for (Hops k = 1; k <= 3; ++k) {
      const Clustering c = khop_clustering(net.graph, k);
      EXPECT_EQ(adjacent_cluster_pairs(net.graph, c),
                reference::adjacent_cluster_pairs(net.graph, c))
          << "n=" << n << " k=" << k;
      for (const NeighborRule rule :
           {NeighborRule::kAllWithin2k1, NeighborRule::kAdjacent,
            NeighborRule::kWuLou25}) {
        if (rule == NeighborRule::kWuLou25 && k != 1) continue;
        const NeighborSelection got = select_neighbors(net.graph, c, rule);
        const NeighborSelection want =
            reference::select_neighbors(net.graph, c, rule);
        EXPECT_EQ(got.rule, want.rule);
        EXPECT_EQ(got.selected, want.selected) << "n=" << n << " k=" << k;
        EXPECT_EQ(got.head_pairs, want.head_pairs) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SelectionGraph, WuLouStillConnectsAllHeads) {
  // The 2.5-hop rule drops links but must keep the head graph connected.
  Rng rng(504);
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  for (int rep = 0; rep < 5; ++rep) {
    const AdHocNetwork net = generate_network(cfg, rng);
    const Clustering c = khop_clustering(net.graph, 1);
    const auto sel = select_neighbors(net.graph, c, NeighborRule::kWuLou25);
    EXPECT_TRUE(is_connected(selection_graph(c, sel))) << "rep " << rep;
  }
}

}  // namespace
}  // namespace khop
