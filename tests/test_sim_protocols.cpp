// Cross-validation of the distributed protocols against the centralized
// reference algorithms: identical clusterheads, memberships, A-NCR
// selections and AC-LMST gateways on the same topologies.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "khop/common/error.hpp"
#include "khop/gateway/lmst.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/net/generator.hpp"
#include "khop/sim/protocols/ancr_protocol.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"
#include "khop/sim/protocols/gateway_protocol.hpp"
#include "khop/sim/protocols/neighborhood.hpp"

namespace khop {
namespace {

AdHocNetwork make_net(std::uint64_t seed, std::size_t n = 90,
                      double degree = 6.0) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  Rng rng(seed);
  return generate_network(cfg, rng);
}

TEST(NeighborhoodDiscovery, MatchesBfsBalls) {
  const AdHocNetwork net = make_net(2001, 70);
  for (const Hops k : {1u, 2u, 3u}) {
    SyncEngine engine(net.graph, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(k);
    });
    ASSERT_TRUE(engine.run(4 * k + 8));

    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      const auto& agent =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      const BfsTree tree = bfs_bounded(net.graph, v, k);
      std::size_t reachable = 0;
      for (NodeId o = 0; o < net.num_nodes(); ++o) {
        if (o == v || tree.dist[o] == kUnreachable) continue;
        ++reachable;
        const auto* rec = agent.known().find(o);
        ASSERT_NE(rec, nullptr) << "node " << v << " origin " << o;
        EXPECT_EQ(rec->dist, tree.dist[o]);
      }
      EXPECT_EQ(agent.known().size(), reachable) << "node " << v;
    }
  }
}

TEST(NeighborhoodDiscovery, ParentsAreCanonical) {
  const AdHocNetwork net = make_net(2002, 60);
  const Hops k = 2;
  SyncEngine engine(net.graph, [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  });
  ASSERT_TRUE(engine.run(4 * k + 8));
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const auto& agent =
        dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
    for (const auto& [origin, rec] : agent.known().sorted_items()) {
      // Parent pointers must match the centralized canonical BFS tree of
      // that origin (parents point one hop toward the origin).
      const BfsTree tree = bfs(net.graph, origin);
      EXPECT_EQ(rec.parent, tree.parent[v])
          << "node " << v << " origin " << origin;
    }
  }
}

TEST(DistributedClustering, MatchesCentralizedIdRule) {
  for (const std::uint64_t seed : {2003ull, 2004ull, 2005ull}) {
    const AdHocNetwork net = make_net(seed);
    for (const Hops k : {1u, 2u, 3u}) {
      const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
      const Clustering central =
          khop_clustering(net.graph, k, prio, AffiliationRule::kIdBased);
      const Clustering dist = run_distributed_clustering(
          net.graph, k, prio, AffiliationRule::kIdBased);
      EXPECT_EQ(dist.heads, central.heads) << "seed " << seed << " k=" << k;
      EXPECT_EQ(dist.head_of, central.head_of);
      EXPECT_EQ(dist.dist_to_head, central.dist_to_head);
    }
  }
}

TEST(DistributedClustering, MatchesCentralizedDistanceRule) {
  const AdHocNetwork net = make_net(2006, 100);
  for (const Hops k : {2u, 3u}) {
    const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
    const Clustering central =
        khop_clustering(net.graph, k, prio, AffiliationRule::kDistanceBased);
    const Clustering dist = run_distributed_clustering(
        net.graph, k, prio, AffiliationRule::kDistanceBased);
    EXPECT_EQ(dist.heads, central.heads);
    EXPECT_EQ(dist.head_of, central.head_of);
  }
}

TEST(DistributedClustering, MatchesCentralizedDegreePriority) {
  const AdHocNetwork net = make_net(2007, 80);
  const auto prio = make_priorities(net.graph, PriorityRule::kHighestDegree);
  const Clustering central =
      khop_clustering(net.graph, 2, prio, AffiliationRule::kIdBased);
  const Clustering dist = run_distributed_clustering(
      net.graph, 2, prio, AffiliationRule::kIdBased);
  EXPECT_EQ(dist.heads, central.heads);
  EXPECT_EQ(dist.head_of, central.head_of);
}

TEST(DistributedClustering, RejectsSizeBasedRule) {
  const AdHocNetwork net = make_net(2008, 40);
  const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
  EXPECT_THROW(run_distributed_clustering(net.graph, 1, prio,
                                          AffiliationRule::kSizeBased),
               InvalidArgument);
}

TEST(DistributedClustering, HeadsCollectTheirMembers) {
  const AdHocNetwork net = make_net(2009, 60);
  const Hops k = 2;
  const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);

  SyncEngine engine(net.graph, [&](NodeId v) {
    return std::make_unique<DistributedClusteringAgent>(
        k, prio[v], AffiliationRule::kIdBased);
  });
  ASSERT_TRUE(engine.run(3 * k * (net.num_nodes() + 2) + 16));

  const Clustering central = khop_clustering(net.graph, k, prio);
  for (NodeId h : central.heads) {
    const auto& agent =
        dynamic_cast<const DistributedClusteringAgent&>(engine.agent(h));
    auto got = agent.joined_members();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, central.cluster_members(central.cluster_of[h]))
        << "head " << h;
  }
}

TEST(DistributedAncr, MatchesCentralizedSelection) {
  for (const std::uint64_t seed : {2010ull, 2011ull}) {
    const AdHocNetwork net = make_net(seed, 100);
    for (const Hops k : {1u, 2u, 3u}) {
      const Clustering c = khop_clustering(net.graph, k);
      const NeighborSelection central =
          select_neighbors(net.graph, c, NeighborRule::kAdjacent);
      const NeighborSelection dist = run_distributed_ancr(net.graph, c);
      EXPECT_EQ(dist.head_pairs, central.head_pairs)
          << "seed " << seed << " k=" << k;
      EXPECT_EQ(dist.selected, central.selected);
    }
  }
}

TEST(DistributedNc, MatchesCentralizedSelection) {
  const AdHocNetwork net = make_net(2016, 100);
  for (const Hops k : {1u, 2u, 3u}) {
    const Clustering c = khop_clustering(net.graph, k);
    const NeighborSelection central =
        select_neighbors(net.graph, c, NeighborRule::kAllWithin2k1);
    const NeighborSelection dist = run_distributed_nc(net.graph, c);
    EXPECT_EQ(dist.head_pairs, central.head_pairs) << "k=" << k;
    EXPECT_EQ(dist.selected, central.selected) << "k=" << k;
  }
}

TEST(DistributedAcLmst, MatchesCentralizedGateways) {
  for (const std::uint64_t seed : {2012ull, 2013ull, 2014ull}) {
    const AdHocNetwork net = make_net(seed, 100);
    for (const Hops k : {1u, 2u, 3u}) {
      const Clustering c = khop_clustering(net.graph, k);
      const Backbone central = build_backbone(net.graph, c, Pipeline::kAcLmst);
      const Backbone dist = run_distributed_aclmst(net.graph, c);
      EXPECT_EQ(dist.gateways, central.gateways)
          << "seed " << seed << " k=" << k;
      EXPECT_EQ(dist.virtual_links, central.virtual_links)
          << "seed " << seed << " k=" << k;
    }
  }
}

TEST(DistributedProtocols, OverheadGrowsWithK) {
  const AdHocNetwork net = make_net(2015, 100);
  const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
  std::size_t prev_tx = 0;
  for (const Hops k : {1u, 2u, 3u, 4u}) {
    SimStats stats;
    run_distributed_clustering(net.graph, k, prio,
                               AffiliationRule::kIdBased, &stats);
    if (k > 1) {
      EXPECT_GT(stats.transmissions, 0u);
    }
    // The k-hop flood volume is monotone in k in expectation; allow equality.
    EXPECT_GE(stats.transmissions + 50, prev_tx) << "k=" << k;
    prev_tx = stats.transmissions;
  }
}

}  // namespace
}  // namespace khop
