// Unit suite for the telemetry subsystem (src/khop/obs): histogram
// bucketing + quantile math, counter/gauge semantics under threads, RAII
// span nesting and thread attribution, registry JSON shape, and the
// disabled-path no-op guarantees.
//
// Every test restores the global telemetry state it touched: the registry
// and tracer are process-wide, and other suites (the determinism suite in
// particular) assume telemetry starts disabled and empty.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "khop/obs/metrics.hpp"
#include "khop/obs/telemetry.hpp"
#include "khop/obs/trace.hpp"

namespace khop::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_all(); }
  void TearDown() override {
    set_enabled(false);
    reset_all();
  }
};

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Bucket 0 = {0}; bucket b >= 1 = [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b);
  }
  EXPECT_EQ(Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Histogram::bucket_lo(4), 8u);
  EXPECT_EQ(Histogram::bucket_hi(4), 15u);
}

TEST_F(ObsTest, HistogramCountSumAndBuckets) {
  Histogram h("t");
  for (std::uint64_t v : {0ull, 1ull, 1ull, 5ull, 9ull}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 2u);  // {1, 1}
  EXPECT_EQ(h.bucket_count(3), 1u);  // 5 in [4,7]
  EXPECT_EQ(h.bucket_count(4), 1u);  // 9 in [8,15]
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST_F(ObsTest, HistogramQuantiles) {
  Histogram h("t");
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty

  // Single sample: every quantile interpolates within that sample's bucket.
  h.record(6);  // bucket 3 = [4, 7]
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 4.0);
  EXPECT_LE(q, 7.0);

  // 100 samples of value 1 and one of 1000: p50 sits in bucket 1 (exact
  // value 1), p99+ may reach the outlier's bucket.
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(1);
  h.record(1000);
  EXPECT_EQ(h.quantile(0.5), 1.0);  // bucket [1,1] interpolates to exactly 1
  EXPECT_EQ(h.quantile(0.9), 1.0);
  const double p999 = h.quantile(0.999);
  EXPECT_GE(p999, 512.0);  // the outlier's bucket [512, 1023]
  EXPECT_LE(p999, 1023.0);

  // Quantile error is bounded by the bucket: the returned value lands in
  // the same bucket as the true sample quantile.
  h.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  for (double p : {0.5, 0.9, 0.99}) {
    const double got = h.quantile(p);
    const std::uint64_t truth =
        static_cast<std::uint64_t>(p * 1000.0);  // samples are 1..1000
    EXPECT_EQ(Histogram::bucket_of(static_cast<std::uint64_t>(got)),
              Histogram::bucket_of(truth))
        << "p=" << p << " got=" << got << " truth=" << truth;
  }
}

TEST_F(ObsTest, LocalHistogramFlushAndMerge) {
  Histogram h("t");
  LocalHistogram a;
  LocalHistogram b;
  a.record(0);
  a.record(5);
  b.record(9);
  EXPECT_EQ(h.count(), 0u);  // nothing reaches the histogram until flush
  a.merge(b);
  EXPECT_EQ(b.total(), 0u);  // merge drains the source
  EXPECT_EQ(a.total(), 3u);
  a.flush(h);
  EXPECT_EQ(a.total(), 0u);  // flush drains the batch
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 14u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(3), 1u);  // 5 in [4,7]
  EXPECT_EQ(h.bucket_count(4), 1u);  // 9 in [8,15]
}

TEST_F(ObsTest, CounterAcrossThreads) {
  Counter c("t");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEach = 10000;
  std::vector<std::thread> ts;
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([&] {
      for (std::uint64_t j = 0; j < kEach; ++j) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kEach);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeTracksMax) {
  Gauge g("t");
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 12);
}

TEST_F(ObsTest, RegistryReturnsStableInstruments) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("y"), &a);
  a.add(3);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);  // reset zeros, registration survives
  EXPECT_EQ(&reg.counter("x"), &a);
}

TEST_F(ObsTest, RegistryJsonShape) {
  Registry reg;
  reg.counter("c1").add(7);
  reg.gauge("g1").set(-2);
  reg.histogram("h1").record(5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"khop.metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"c1\""), std::string::npos);
  EXPECT_NE(json.find("\"g1\""), std::string::npos);
  EXPECT_NE(json.find("\"h1\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST_F(ObsTest, SpanDisabledRecordsNothing) {
  ASSERT_FALSE(enabled());
  const std::size_t before = Tracer::global().num_events();
  {
    Span s("test/disabled");
    s.arg("x", 1);
  }
  EXPECT_EQ(Tracer::global().num_events(), before);
}

TEST_F(ObsTest, SpanNestingDepthAndArgs) {
#if !KHOP_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out";
#endif
  ScopedEnable on;
  {
    Span outer("test/outer");
    outer.arg("a", 42);
    {
      Span inner("test/inner");
      inner.arg("b", -7);
    }
  }
  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "test/inner");
  EXPECT_STREQ(outer.name, "test/outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.t0_ns, outer.t0_ns);
  EXPECT_LE(inner.t1_ns, outer.t1_ns);
  ASSERT_EQ(outer.nargs, 1);
  EXPECT_STREQ(outer.args[0].key, "a");
  EXPECT_EQ(outer.args[0].value, 42);
  ASSERT_EQ(inner.nargs, 1);
  EXPECT_EQ(inner.args[0].value, -7);
}

TEST_F(ObsTest, SpanThreadAttribution) {
#if !KHOP_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out";
#endif
  ScopedEnable on;
  { Span s("test/main"); }
  std::thread worker([] { Span s("test/worker"); });
  worker.join();
  const auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  for (const TraceEvent& e : events) EXPECT_EQ(e.depth, 0);
}

TEST_F(ObsTest, ChromeJsonIsWellFormedEnough) {
#if !KHOP_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out";
#endif
  {
    ScopedEnable on;
    Span s("test/export");
    s.arg("n", 3);
  }
  const std::string json = Tracer::global().to_chrome_json();
  EXPECT_NE(json.find("\"schema\": \"khop.trace\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"test/export\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
}

TEST_F(ObsTest, ScopedEnableRestores) {
  ASSERT_FALSE(enabled());
  {
    ScopedEnable on;
#if KHOP_TELEMETRY
    EXPECT_TRUE(enabled());
#endif
    {
      ScopedEnable off(false);
      EXPECT_FALSE(enabled());
    }
#if KHOP_TELEMETRY
    EXPECT_TRUE(enabled());
#endif
  }
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace khop::obs
