// Unit tests for canonical virtual links (shortest gateway paths).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

TEST(VirtualLink, PathAndHopsOnChain) {
  const Graph g =
      Graph::from_edges(5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto links = VirtualLinkMap::build(g, {{0, 4}});
  const VirtualLink& l = links.link(0, 4);
  EXPECT_EQ(l.u, 0u);
  EXPECT_EQ(l.v, 4u);
  EXPECT_EQ(l.hops, 4u);
  EXPECT_EQ(l.path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(VirtualLink, UnorderedLookup) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto links = VirtualLinkMap::build(g, {{2, 0}});
  EXPECT_TRUE(links.contains(0, 2));
  EXPECT_TRUE(links.contains(2, 0));
  EXPECT_EQ(links.link(2, 0).hops, 2u);
  EXPECT_EQ(links.link(0, 2).path.front(), 0u);  // rooted at smaller id
}

TEST(VirtualLink, CanonicalTieBreakPicksSmallInterior) {
  // Two parallel 2-hop routes 0-1-3 and 0-2-3: the canonical path must use
  // interior node 1.
  const Graph g =
      Graph::from_edges(4, EdgeList{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto links = VirtualLinkMap::build(g, {{0, 3}});
  EXPECT_EQ(links.link(0, 3).path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(VirtualLink, MissingPairThrows) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto links = VirtualLinkMap::build(g, {{0, 1}});
  EXPECT_THROW(links.link(0, 2), InvalidArgument);
  EXPECT_FALSE(links.contains(0, 2));
}

TEST(VirtualLink, RejectsSelfPair) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  EXPECT_THROW(VirtualLinkMap::build(g, {{1, 1}}), InvalidArgument);
}

TEST(VirtualLink, DisconnectedEndpointsThrow) {
  const Graph g = Graph::from_edges(4, EdgeList{{0, 1}, {2, 3}});
  EXPECT_THROW(VirtualLinkMap::build(g, {{0, 3}}), NotConnected);
}

TEST(VirtualLink, HopsMatchBfsOnRandomNetworks) {
  Rng rng(601);
  GeneratorConfig cfg;
  cfg.num_nodes = 80;
  const AdHocNetwork net = generate_network(cfg, rng);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) pairs.emplace_back(u, v);
  }
  const auto links = VirtualLinkMap::build(net.graph, pairs);
  for (const auto& [u, v] : pairs) {
    const auto tree = bfs(net.graph, u);
    const VirtualLink& l = links.link(u, v);
    EXPECT_EQ(l.hops, tree.dist[v]);
    EXPECT_EQ(l.path.size(), l.hops + 1u);
    EXPECT_EQ(l.path.front(), u);
    EXPECT_EQ(l.path.back(), v);
    for (std::size_t i = 0; i + 1 < l.path.size(); ++i) {
      EXPECT_TRUE(net.graph.has_edge(l.path[i], l.path[i + 1]));
    }
  }
}

TEST(VirtualLink, DuplicatePairsDeduplicated) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto links = VirtualLinkMap::build(g, {{0, 2}, {2, 0}, {0, 2}});
  EXPECT_EQ(links.all().size(), 1u);
}

}  // namespace
}  // namespace khop
