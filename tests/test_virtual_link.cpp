// Unit tests for canonical virtual links (shortest gateway paths), including
// the horizon-bounded and parallel builds introduced in PR 4.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

void expect_links_eq(const VirtualLinkMap& got, const VirtualLinkMap& want) {
  ASSERT_EQ(got.all().size(), want.all().size());
  for (std::size_t i = 0; i < got.all().size(); ++i) {
    const VirtualLink& a = got.all()[i];
    const VirtualLink& b = want.all()[i];
    EXPECT_EQ(a.u, b.u) << "link " << i;
    EXPECT_EQ(a.v, b.v) << "link " << i;
    EXPECT_EQ(a.hops, b.hops) << "link " << i;
    EXPECT_EQ(a.path, b.path) << "link " << i;
  }
}

TEST(VirtualLink, PathAndHopsOnChain) {
  const Graph g =
      Graph::from_edges(5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto links = VirtualLinkMap::build(g, {{0, 4}});
  const VirtualLink& l = links.link(0, 4);
  EXPECT_EQ(l.u, 0u);
  EXPECT_EQ(l.v, 4u);
  EXPECT_EQ(l.hops, 4u);
  EXPECT_EQ(l.path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(VirtualLink, UnorderedLookup) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto links = VirtualLinkMap::build(g, {{2, 0}});
  EXPECT_TRUE(links.contains(0, 2));
  EXPECT_TRUE(links.contains(2, 0));
  EXPECT_EQ(links.link(2, 0).hops, 2u);
  EXPECT_EQ(links.link(0, 2).path.front(), 0u);  // rooted at smaller id
}

TEST(VirtualLink, CanonicalTieBreakPicksSmallInterior) {
  // Two parallel 2-hop routes 0-1-3 and 0-2-3: the canonical path must use
  // interior node 1.
  const Graph g =
      Graph::from_edges(4, EdgeList{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto links = VirtualLinkMap::build(g, {{0, 3}});
  EXPECT_EQ(links.link(0, 3).path, (std::vector<NodeId>{0, 1, 3}));
}

TEST(VirtualLink, MissingPairThrows) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto links = VirtualLinkMap::build(g, {{0, 1}});
  EXPECT_THROW(links.link(0, 2), InvalidArgument);
  EXPECT_FALSE(links.contains(0, 2));
}

TEST(VirtualLink, RejectsSelfPair) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  EXPECT_THROW(VirtualLinkMap::build(g, {{1, 1}}), InvalidArgument);
}

TEST(VirtualLink, DisconnectedEndpointsThrow) {
  const Graph g = Graph::from_edges(4, EdgeList{{0, 1}, {2, 3}});
  EXPECT_THROW(VirtualLinkMap::build(g, {{0, 3}}), NotConnected);
}

TEST(VirtualLink, HopsMatchBfsOnRandomNetworks) {
  Rng rng(601);
  GeneratorConfig cfg;
  cfg.num_nodes = 80;
  const AdHocNetwork net = generate_network(cfg, rng);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) pairs.emplace_back(u, v);
  }
  const auto links = VirtualLinkMap::build(net.graph, pairs);
  for (const auto& [u, v] : pairs) {
    const auto tree = bfs(net.graph, u);
    const VirtualLink& l = links.link(u, v);
    EXPECT_EQ(l.hops, tree.dist[v]);
    EXPECT_EQ(l.path.size(), l.hops + 1u);
    EXPECT_EQ(l.path.front(), u);
    EXPECT_EQ(l.path.back(), v);
    for (std::size_t i = 0; i + 1 < l.path.size(); ++i) {
      EXPECT_TRUE(net.graph.has_edge(l.path[i], l.path[i + 1]));
    }
  }
}

TEST(VirtualLink, DuplicatePairsDeduplicated) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto links = VirtualLinkMap::build(g, {{0, 2}, {2, 0}, {0, 2}});
  EXPECT_EQ(links.all().size(), 1u);
}

TEST(VirtualLink, EmptyPairsBuildEmptyMap) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  Workspace ws;
  ThreadPool pool(2);
  for (const VirtualLinkMap& links :
       {VirtualLinkMap::build(g, {}), VirtualLinkMap::build_bounded(g, {}, 2),
        VirtualLinkMap::build_bounded(g, {}, 2, ws),
        VirtualLinkMap::build_bounded(g, {}, 2, pool)}) {
    EXPECT_TRUE(links.all().empty());
    EXPECT_FALSE(links.contains(0, 1));
    EXPECT_EQ(links.bounded_fallbacks(), 0u);
  }
}

TEST(VirtualLink, BoundedDuplicatesAndReverseDeduplicated) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  ThreadPool pool(2);
  const auto serial = VirtualLinkMap::build_bounded(g, {{0, 2}, {2, 0}, {0, 2}}, 2);
  const auto par =
      VirtualLinkMap::build_bounded(g, {{0, 2}, {2, 0}, {0, 2}}, 2, pool);
  EXPECT_EQ(serial.all().size(), 1u);
  EXPECT_EQ(par.all().size(), 1u);
}

TEST(VirtualLink, BoundedExactlyAtHorizonNeedsNoFallback) {
  // Chain 0..5: pair (0,5) sits at exactly 5 hops. With k = 2 the paper's
  // horizon is 2k+1 = 5, so the boundary case must resolve inside the
  // bounded sweep.
  const Graph g = Graph::from_edges(
      6, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const auto links = VirtualLinkMap::build_bounded(g, {{0, 5}}, 5);
  EXPECT_EQ(links.bounded_fallbacks(), 0u);
  EXPECT_EQ(links.link(0, 5).hops, 5u);
  EXPECT_EQ(links.link(0, 5).path, (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST(VirtualLink, BoundedBeyondHorizonFallsBackUnboundedExactly) {
  // Same chain, horizon 4 < dist 5: the source reruns unbounded and the
  // result must be byte-identical to the unbounded build.
  const Graph g = Graph::from_edges(
      6, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const auto bounded = VirtualLinkMap::build_bounded(g, {{0, 5}, {0, 3}}, 4);
  EXPECT_EQ(bounded.bounded_fallbacks(), 1u);
  expect_links_eq(bounded, VirtualLinkMap::build(g, {{0, 5}, {0, 3}}));
}

TEST(VirtualLink, BoundedDisconnectedEndpointsStillThrow) {
  const Graph g = Graph::from_edges(4, EdgeList{{0, 1}, {2, 3}});
  ThreadPool pool(2);
  EXPECT_THROW(VirtualLinkMap::build_bounded(g, {{0, 3}}, 2), NotConnected);
  EXPECT_THROW(VirtualLinkMap::build_bounded(g, {{0, 3}}, 2, pool),
               NotConnected);
}

TEST(VirtualLink, BoundedAndParallelMatchUnboundedOnRandomNetworks) {
  Rng rng(602);
  GeneratorConfig cfg;
  cfg.num_nodes = 90;
  const AdHocNetwork net = generate_network(cfg, rng);

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < 14; ++u) {
    for (NodeId v = u + 1; v < 14; v += 2) pairs.emplace_back(u, v);
  }
  const auto want = reference::build_virtual_links(net.graph, pairs);
  // Unbounded horizon, a generous bound, and a tight bound (with fallback)
  // must all match the reference oracle; so must every thread count.
  for (const Hops horizon : {kUnreachable, Hops{20}, Hops{2}}) {
    expect_links_eq(VirtualLinkMap::build_bounded(net.graph, pairs, horizon),
                    want);
    for (const std::size_t threads : {1u, 2u, 0u}) {
      ThreadPool pool(threads);
      expect_links_eq(
          VirtualLinkMap::build_bounded(net.graph, pairs, horizon, pool),
          want);
    }
  }
}

TEST(VirtualLink, FromLinksRejectsBadInput) {
  VirtualLink swapped;
  swapped.u = 3;
  swapped.v = 1;
  swapped.hops = 1;
  std::vector<VirtualLink> bad;
  bad.push_back(swapped);
  EXPECT_THROW(VirtualLinkMap::from_links(std::move(bad)), InvalidArgument);

  VirtualLink l;
  l.u = 1;
  l.v = 3;
  l.hops = 1;
  std::vector<VirtualLink> dup;
  dup.push_back(l);
  dup.push_back(l);
  EXPECT_THROW(VirtualLinkMap::from_links(std::move(dup)), InvalidArgument);
}

}  // namespace
}  // namespace khop
