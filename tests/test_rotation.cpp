// Unit tests for power-aware clusterhead rotation (section 3.3).
#include <gtest/gtest.h>

#include "khop/common/error.hpp"
#include "khop/dynamic/rotation.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

AdHocNetwork make_net(std::uint64_t seed, std::size_t n = 80) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = 8.0;
  Rng rng(seed);
  return generate_network(cfg, rng);
}

TEST(Rotation, RunsRequestedEpochs) {
  const AdHocNetwork net = make_net(1201);
  RotationConfig cfg;
  cfg.max_epochs = 10;
  cfg.energy.initial = 1000.0;  // nobody dies
  Rng rng(1);
  const RotationResult r = run_rotation(net, cfg, rng);
  EXPECT_EQ(r.epochs.size(), 10u);
  EXPECT_EQ(r.first_death_epoch, 10u);
  EXPECT_FALSE(r.stopped_disconnected);
}

TEST(Rotation, EnergyDecreasesMonotonically) {
  const AdHocNetwork net = make_net(1202);
  RotationConfig cfg;
  cfg.max_epochs = 15;
  cfg.energy.initial = 1000.0;
  Rng rng(2);
  const RotationResult r = run_rotation(net, cfg, rng);
  for (std::size_t i = 1; i < r.epochs.size(); ++i) {
    EXPECT_LE(r.epochs[i].mean_residual, r.epochs[i - 1].mean_residual);
  }
}

TEST(Rotation, RotationOutlivesStaticLowestId) {
  // Head role rotation (energy priority) must delay the first death versus
  // pinning the same lowest-id heads forever.
  const AdHocNetwork net = make_net(1203, 70);
  RotationConfig rotating;
  rotating.max_epochs = 400;
  rotating.priority = PriorityRule::kHighestEnergy;
  rotating.energy.initial = 60.0;
  rotating.energy.clusterhead_cost = 1.0;
  rotating.energy.gateway_cost = 0.4;
  rotating.energy.member_cost = 0.05;

  RotationConfig pinned = rotating;
  pinned.priority = PriorityRule::kLowestId;

  Rng r1(3), r2(3);
  const RotationResult rot = run_rotation(net, rotating, r1);
  const RotationResult fix = run_rotation(net, pinned, r2);
  EXPECT_GT(rot.first_death_epoch, fix.first_death_epoch);
}

TEST(Rotation, ChurnIsNonzeroUnderEnergyPriority) {
  const AdHocNetwork net = make_net(1204);
  RotationConfig cfg;
  cfg.max_epochs = 12;
  cfg.energy.initial = 500.0;
  Rng rng(4);
  const RotationResult r = run_rotation(net, cfg, rng);
  std::size_t churn = 0;
  for (std::size_t i = 1; i < r.epochs.size(); ++i) {
    churn += r.epochs[i].head_churn;
  }
  EXPECT_GT(churn, 0u);
}

TEST(Rotation, StopsWhenNetworkDies) {
  const AdHocNetwork net = make_net(1205, 50);
  RotationConfig cfg;
  cfg.max_epochs = 100000;
  cfg.energy.initial = 5.0;  // very short lifetime
  cfg.energy.member_cost = 0.5;
  Rng rng(5);
  const RotationResult r = run_rotation(net, cfg, rng);
  EXPECT_LT(r.epochs.size(), 100000u);
}

TEST(Rotation, RejectsZeroEpochs) {
  const AdHocNetwork net = make_net(1206, 40);
  RotationConfig cfg;
  cfg.max_epochs = 0;
  Rng rng(6);
  EXPECT_THROW(run_rotation(net, cfg, rng), InvalidArgument);
}

}  // namespace
}  // namespace khop
