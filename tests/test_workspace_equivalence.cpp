// Bit-exact equivalence suite for the zero-allocation workspace subsystem:
// every *_into / Workspace& overload must reproduce the preserved reference
// (allocating) implementations exactly, on random topologies, including
// across repeated reuse of one workspace and across run_trials thread counts.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "khop/cluster/reference.hpp"
#include "khop/exp/trial.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/bfs_reference.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/engine.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

void expect_tree_eq(const BfsTree& got, const BfsTree& want) {
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(got.parent, want.parent);
}

// --- Graph layer -----------------------------------------------------------

TEST(WorkspaceEquivalence, BfsIntoMatchesReferenceAcrossReuse) {
  BfsScratch ws;
  BfsTree tree;
  // One scratch and one output object reused across graphs of different
  // sizes and across sources: every run must still be exact.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = random_topology(40 + 17 * seed, 5.0, seed);
    for (NodeId s = 0; s < g.num_nodes(); s += 3) {
      bfs_into(g, s, ws, tree);
      expect_tree_eq(tree, reference::bfs(g, s));
    }
  }
}

TEST(WorkspaceEquivalence, BoundedBfsIntoMatchesReference) {
  BfsScratch ws;
  BfsTree tree;
  const Graph g = random_topology(90, 6.0, 7);
  for (Hops k = 0; k <= 4; ++k) {
    for (NodeId s = 0; s < g.num_nodes(); s += 5) {
      bfs_bounded_into(g, s, k, ws, tree);
      expect_tree_eq(tree, reference::bfs_bounded(g, s, k));
    }
  }
}

TEST(WorkspaceEquivalence, KHopNeighborhoodIntoMatchesReference) {
  BfsScratch ws;
  std::vector<NodeId> nbrs;
  const Graph g = random_topology(80, 6.0, 11);
  for (Hops k = 1; k <= 3; ++k) {
    for (NodeId s = 0; s < g.num_nodes(); s += 7) {
      k_hop_neighborhood_into(g, s, k, ws, nbrs);
      EXPECT_EQ(nbrs, reference::k_hop_neighborhood(g, s, k));
    }
  }
}

TEST(WorkspaceEquivalence, MultiSourceBfsIntoMatchesReference) {
  BfsScratch ws;
  MultiSourceBfs got;
  const Graph g = random_topology(100, 6.0, 13);
  const std::vector<std::vector<NodeId>> seed_sets = {
      {0}, {0, 1, 2}, {5, 40, 77}, {99, 98, 0, 51}};
  for (const auto& seeds : seed_sets) {
    multi_source_bfs_into(g, seeds, ws, got);
    const MultiSourceBfs want = reference::multi_source_bfs(g, seeds);
    EXPECT_EQ(got.dist, want.dist);
    EXPECT_EQ(got.owner, want.owner);
  }
}

TEST(WorkspaceEquivalence, AllocatingWrappersMatchReference) {
  const Graph g = random_topology(70, 5.0, 17);
  expect_tree_eq(bfs(g, 3), reference::bfs(g, 3));
  expect_tree_eq(bfs_bounded(g, 12, 2), reference::bfs_bounded(g, 12, 2));
  EXPECT_EQ(k_hop_neighborhood(g, 5, 2),
            reference::k_hop_neighborhood(g, 5, 2));
  const MultiSourceBfs got = multi_source_bfs(g, {2, 30});
  const MultiSourceBfs want = reference::multi_source_bfs(g, {2, 30});
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(got.owner, want.owner);
}

TEST(WorkspaceEquivalence, DenseFrontierBottomUpMatchesReference) {
  // A large radius on the 100x100 field makes the first BFS level hold a
  // third of the graph, which drives BfsScratch through its bottom-up
  // (frontier-bitset) expansion path; the reference oracle has no such
  // switch, so equality here proves the two directions are bit-exact.
  GeneratorConfig gen;
  gen.num_nodes = 400;
  gen.explicit_radius = 45.0;
  Rng rng(23);
  const Graph g = generate_network(gen, rng).graph;
  BfsScratch ws;
  BfsTree tree;
  for (NodeId s = 0; s < g.num_nodes(); s += 37) {
    for (Hops k = 1; k <= 4; ++k) {
      bfs_bounded_into(g, s, k, ws, tree);
      expect_tree_eq(tree, reference::bfs_bounded(g, s, k));
    }
    bfs_into(g, s, ws, tree);
    expect_tree_eq(tree, reference::bfs(g, s));
  }
}

TEST(WorkspaceEquivalence, ByteEpochStampsSurviveWrap) {
  // The visited marks are one byte per node, so the epoch wraps (and the
  // stamp array is bulk-cleared) every 255 runs. Cross the wrap twice, with
  // a mid-stream graph-size change to exercise stamp growth at a non-zero
  // epoch, checking every run against the oracle.
  BfsScratch ws;
  BfsTree tree;
  const Graph small = random_topology(60, 5.0, 29);
  const Graph large = random_topology(150, 6.0, 31);
  for (int iter = 0; iter < 600; ++iter) {
    const Graph& g = (iter >= 300 && iter < 420) ? large : small;
    const NodeId s = static_cast<NodeId>(iter) % g.num_nodes();
    bfs_bounded_into(g, s, 2, ws, tree);
    expect_tree_eq(tree, reference::bfs_bounded(g, s, 2));
  }
  // Multi-source reuses the same stamps right after the wrap region.
  MultiSourceBfs got;
  multi_source_bfs_into(small, {0, 17, 58}, ws, got);
  const MultiSourceBfs want = reference::multi_source_bfs(small, {0, 17, 58});
  EXPECT_EQ(got.dist, want.dist);
  EXPECT_EQ(got.owner, want.owner);
}

// --- Cluster layer ---------------------------------------------------------

void expect_clustering_eq(const Clustering& got, const Clustering& want) {
  EXPECT_EQ(got.k, want.k);
  EXPECT_EQ(got.heads, want.heads);
  EXPECT_EQ(got.head_of, want.head_of);
  EXPECT_EQ(got.dist_to_head, want.dist_to_head);
  EXPECT_EQ(got.cluster_of, want.cluster_of);
  EXPECT_EQ(got.election_rounds, want.election_rounds);
}

TEST(WorkspaceEquivalence, ClusteringMatchesReferenceAllRules) {
  Workspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(60 + 20 * seed, 6.0, 100 + seed);
    const auto prios = make_priorities(g, PriorityRule::kLowestId);
    for (const AffiliationRule rule :
         {AffiliationRule::kIdBased, AffiliationRule::kDistanceBased,
          AffiliationRule::kSizeBased}) {
      for (Hops k = 1; k <= 3; ++k) {
        // The same workspace is reused across every configuration.
        expect_clustering_eq(khop_clustering(g, k, prios, rule, ws),
                             reference::khop_clustering(g, k, prios, rule));
      }
    }
  }
}

TEST(WorkspaceEquivalence, ClusteringDegreePrioritiesMatchReference) {
  Workspace ws;
  const Graph g = random_topology(90, 7.0, 23);
  const auto prios = make_priorities(g, PriorityRule::kHighestDegree);
  expect_clustering_eq(
      khop_clustering(g, 2, prios, AffiliationRule::kIdBased, ws),
      reference::khop_clustering(g, 2, prios, AffiliationRule::kIdBased));
}

TEST(WorkspaceEquivalence, CoreVariantMatchesReference) {
  Workspace ws;
  const Graph g = random_topology(80, 6.0, 29);
  const auto prios = make_priorities(g, PriorityRule::kLowestId);
  for (Hops k = 1; k <= 3; ++k) {
    expect_clustering_eq(khop_core(g, k, prios, ws),
                         reference::khop_core(g, k, prios));
  }
}

TEST(WorkspaceEquivalence, KrishnaCoverMatchesReferenceAcrossReuse) {
  Workspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(50 + 10 * seed, 5.0, 200 + seed);
    for (Hops k = 1; k <= 2; ++k) {
      const KClusterCover got = krishna_kclusters(g, k, ws);
      const KClusterCover want = reference::krishna_kclusters(g, k);
      EXPECT_EQ(got.k, want.k);
      EXPECT_EQ(got.clusters, want.clusters);
      EXPECT_EQ(got.clusters_of, want.clusters_of);
    }
  }
}

// --- Gateway layer ---------------------------------------------------------

TEST(WorkspaceEquivalence, BackboneIdenticalWithSharedWorkspace) {
  Workspace ws;
  const Graph g = random_topology(100, 6.0, 31);
  const Clustering c = khop_clustering(g, 2);
  for (const Pipeline p : kAllPipelines) {
    const Backbone with_ws = build_backbone(g, c, p, ws);
    const Backbone without = build_backbone(g, c, p);
    EXPECT_EQ(with_ws.heads, without.heads);
    EXPECT_EQ(with_ws.gateways, without.gateways);
    EXPECT_EQ(with_ws.virtual_links, without.virtual_links);
  }
}

// --- Sim layer -------------------------------------------------------------

// Trace-recording flood agent: every delivery is logged in processing order,
// so two engines (or an engine and the naive reference simulation below)
// agree iff their delivery sequences are bit-identical.
struct TraceEntry {
  std::size_t round;
  NodeId receiver;
  NodeId sender;
  std::uint16_t type;
  std::vector<std::int64_t> payload;

  bool operator==(const TraceEntry&) const = default;
};

class TracingFloodAgent : public NodeAgent {
 public:
  TracingFloodAgent(NodeId id, Hops ttl, std::vector<TraceEntry>* trace)
      : id_(id), ttl_(ttl), trace_(trace) {}

  void on_start(NodeContext& ctx) override {
    ctx.broadcast(1, {static_cast<std::int64_t>(id_),
                      static_cast<std::int64_t>(ttl_)});
  }

  void on_message(NodeContext& ctx, const Message& msg) override {
    trace_->push_back(TraceEntry{ctx.round(), ctx.id(), msg.sender, msg.type,
                                 msg.data});
    const auto origin = msg.data[0];
    const auto ttl = msg.data[1];
    if (ttl > 1 && !seen_.contains(origin)) {
      seen_[origin] = true;
      ctx.broadcast(1, {origin, ttl - 1});
    }
  }

 private:
  NodeId id_;
  Hops ttl_;
  std::vector<TraceEntry>* trace_;
  std::map<std::int64_t, bool> seen_;
};

// Reference simulation of the same flood protocol with the engine's
// documented semantics, implemented the pre-arena way: per-destination
// vector-of-vectors of owned-payload messages, per-inbox (sender, type,
// payload) sort, destinations in ascending order.
std::vector<TraceEntry> reference_flood_trace(const Graph& g, Hops ttl,
                                              std::size_t max_rounds) {
  struct OwnedMsg {
    NodeId sender;
    std::uint16_t type;
    std::vector<std::int64_t> data;
  };
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<OwnedMsg>> pending(n);
  std::vector<std::map<std::int64_t, bool>> seen(n);
  std::vector<TraceEntry> trace;

  const auto broadcast = [&](NodeId from, std::vector<std::int64_t> data) {
    for (NodeId v : g.neighbors(from)) {
      pending[v].push_back(OwnedMsg{from, 1, data});
    }
  };

  for (NodeId v = 0; v < n; ++v) {
    broadcast(v, {static_cast<std::int64_t>(v), static_cast<std::int64_t>(ttl)});
  }

  for (std::size_t round = 1; round <= max_rounds; ++round) {
    std::vector<std::vector<OwnedMsg>> inbox(n);
    inbox.swap(pending);
    bool any = false;
    for (NodeId v = 0; v < n; ++v) {
      auto& box = inbox[v];
      std::sort(box.begin(), box.end(), [](const OwnedMsg& a, const OwnedMsg& b) {
        return std::tie(a.sender, a.type, a.data) <
               std::tie(b.sender, b.type, b.data);
      });
      for (const OwnedMsg& m : box) {
        any = true;
        trace.push_back(TraceEntry{round, v, m.sender, m.type, m.data});
        const auto origin = m.data[0];
        const auto t = m.data[1];
        if (t > 1 && !seen[v].contains(origin)) {
          seen[v][origin] = true;
          broadcast(v, {origin, t - 1});
        }
      }
    }
    if (!any) break;
  }
  return trace;
}

TEST(WorkspaceEquivalence, ArenaEngineTraceMatchesNaiveReference) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(40, 5.0, 300 + seed);
    const Hops ttl = 3;

    std::vector<TraceEntry> engine_trace;
    SyncEngine engine(g, [&](NodeId v) {
      return std::make_unique<TracingFloodAgent>(v, ttl, &engine_trace);
    });
    EXPECT_TRUE(engine.run(ttl + 2));

    const std::vector<TraceEntry> want = reference_flood_trace(g, ttl, ttl + 2);
    EXPECT_EQ(engine_trace, want);
  }
}

TEST(WorkspaceEquivalence, ArenaEngineStatsMatchPerNeighborAccounting) {
  // payload_words must count one materialization per broadcast (as the
  // original per-neighbor-copy engine did), receptions one per delivery.
  const Graph g = random_topology(30, 4.0, 41);
  std::vector<TraceEntry> trace;
  SyncEngine engine(g, [&](NodeId v) {
    return std::make_unique<TracingFloodAgent>(v, 1, &trace);
  });
  EXPECT_TRUE(engine.run(4));
  EXPECT_EQ(engine.stats().transmissions, g.num_nodes());
  EXPECT_EQ(engine.stats().payload_words, 2 * g.num_nodes());
  EXPECT_EQ(engine.stats().receptions, 2 * g.num_edges());
  EXPECT_EQ(trace.size(), 2 * g.num_edges());
}

// --- Exp layer -------------------------------------------------------------

TEST(WorkspaceEquivalence, RunTrialsWorkspaceBitIdenticalAcrossThreadCounts) {
  const TrialFnWs fn = [](Rng& rng, std::size_t trial,
                          Workspace& ws) -> std::vector<double> {
    const Graph g = random_topology(50, 5.0, 500 + trial);
    const Clustering c = khop_clustering(
        g, 2, make_priorities(g, PriorityRule::kLowestId),
        AffiliationRule::kIdBased, ws);
    return {static_cast<double>(c.heads.size()), rng.uniform()};
  };

  TrialPolicy policy;
  policy.min_trials = 8;
  policy.max_trials = 8;
  policy.batch = 4;

  ThreadPool p1(1);
  ThreadPool p4(4);
  const TrialSummary a = run_trials(p1, policy, Rng(77), 2, fn);
  const TrialSummary b = run_trials(p4, policy, Rng(77), 2, fn);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].mean(), b.metrics[m].mean());
    EXPECT_EQ(a.metrics[m].variance(), b.metrics[m].variance());
  }

  // And the workspace overload agrees with the legacy TrialFn surface.
  const TrialFn plain = [&fn](Rng& rng, std::size_t trial) {
    Workspace fresh;
    return fn(rng, trial, fresh);
  };
  const TrialSummary c = run_trials(p4, policy, Rng(77), 2, plain);
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].mean(), c.metrics[m].mean());
  }
}

}  // namespace
}  // namespace khop
