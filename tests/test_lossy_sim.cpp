// Delivery-aware simulation tests: the SyncEngine's DeliveryModel hook, the
// drop/retransmission accounting, the lossy flood runner, and the lossy
// experiment trial. Two properties carry the subsystem:
//   1. zero-loss configurations reproduce the legacy ideal-MAC pipeline
//      bit-for-bit (graph, protocol outcome, and message accounting), and
//   2. lossy runs are deterministic in the seed.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "khop/exp/lossy.hpp"
#include "khop/net/generator.hpp"
#include "khop/radio/delivery.hpp"
#include "khop/radio/lossy_flood.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

bool same_stats(const SimStats& a, const SimStats& b) {
  return a.rounds == b.rounds && a.transmissions == b.transmissions &&
         a.receptions == b.receptions && a.payload_words == b.payload_words &&
         a.drops == b.drops && a.retransmissions == b.retransmissions;
}

/// Drops every attempt; used to pin down the accounting semantics.
class BlackHole final : public DeliveryModel {
 public:
  bool attempt(NodeId, NodeId) override { return false; }
};

class OneShotSender final : public NodeAgent {
 public:
  void on_start(NodeContext& ctx) override {
    if (ctx.id() == 0) ctx.send(1, 1, {7});
  }
  void on_message(NodeContext&, const Message& msg) override {
    got = msg.data[0];
  }
  std::int64_t got = -1;
};

TEST(DeliveryHook, DropsAndRetransmissionsAccounted) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  BlackHole hole;
  DeliveryOptions delivery;
  delivery.model = &hole;
  delivery.retry_budget = 2;
  SyncEngine engine(
      g, [](NodeId) { return std::make_unique<OneShotSender>(); }, delivery);
  EXPECT_TRUE(engine.run(8));
  // One application send, two failed retries, one final drop, no delivery.
  EXPECT_EQ(engine.stats().transmissions, 1u);
  EXPECT_EQ(engine.stats().retransmissions, 2u);
  EXPECT_EQ(engine.stats().drops, 1u);
  EXPECT_EQ(engine.stats().receptions, 0u);
  EXPECT_EQ(dynamic_cast<OneShotSender&>(engine.agent(1)).got, -1);
}

TEST(DeliveryHook, PerfectDeliveryMatchesNoModel) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  PerfectDelivery perfect;
  DeliveryOptions delivery;
  delivery.model = &perfect;
  SyncEngine with(
      g, [](NodeId) { return std::make_unique<OneShotSender>(); }, delivery);
  SyncEngine without(g,
                     [](NodeId) { return std::make_unique<OneShotSender>(); });
  EXPECT_TRUE(with.run(8));
  EXPECT_TRUE(without.run(8));
  EXPECT_TRUE(same_stats(with.stats(), without.stats()));
  EXPECT_EQ(dynamic_cast<OneShotSender&>(with.agent(1)).got, 7);
}

TEST(DeliveryHook, UniformLossZeroNeverDrops) {
  const Graph g = Graph::from_edges(2, EdgeList{{0, 1}});
  UniformLossDelivery none(0.0, 99);
  DeliveryOptions delivery;
  delivery.model = &none;
  SyncEngine engine(
      g, [](NodeId) { return std::make_unique<OneShotSender>(); }, delivery);
  EXPECT_TRUE(engine.run(8));
  EXPECT_EQ(engine.stats().drops, 0u);
  EXPECT_EQ(dynamic_cast<OneShotSender&>(engine.agent(1)).got, 7);
}

TEST(DeliveryHook, AttemptRatesTrackPerLinkProbabilities) {
  // Hub with spokes at distinct distances through a QUDG gray zone, so every
  // link has a different probability: a probs_/neighbor misalignment in
  // LinkDelivery would show up as the wrong link's rate.
  const std::vector<Point2> pts = {
      {0, 0}, {4, 0}, {0, 6}, {-7.5, 0}, {0, -9}};
  const QuasiUnitDiskModel model(5.0, 10.0);
  const LinkLayer layer = build_link_layer(pts, model);
  ASSERT_EQ(layer.probability(0, 1), 1.0);
  ASSERT_NEAR(layer.probability(0, 2), 0.8, 1e-12);
  ASSERT_NEAR(layer.probability(0, 3), 0.5, 1e-12);
  ASSERT_NEAR(layer.probability(0, 4), 0.2, 1e-12);

  LinkDelivery delivery(layer, 123);
  const int trials = 20000;
  for (NodeId v = 1; v < 5; ++v) {
    int delivered = 0;
    for (int t = 0; t < trials; ++t) {
      if (delivery.attempt(0, v)) ++delivered;
    }
    EXPECT_NEAR(static_cast<double>(delivered) / trials,
                layer.probability(0, v), 0.02)
        << "link 0-" << v;
  }
  // Non-links never deliver (distance 11.5 > r_max).
  for (int t = 0; t < 100; ++t) EXPECT_FALSE(delivery.attempt(1, 3));
}

class LossyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig cfg;
    cfg.num_nodes = 100;
    Rng rng(515);
    net_ = generate_network(cfg, rng);
  }
  AdHocNetwork net_;
};

TEST_F(LossyFixture, ZeroLossFloodDeliversEverywhere) {
  const LinkLayer layer =
      build_link_layer(net_.positions, UnitDiskModel(net_.radius));
  const LossyFloodResult r = lossy_flood(layer, 0);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.quiescent);
  EXPECT_EQ(r.delivered, net_.num_nodes());
  EXPECT_EQ(r.stats.drops, 0u);
  EXPECT_EQ(r.stats.retransmissions, 0u);
  // Blind flooding: every node relays exactly once.
  EXPECT_EQ(r.stats.transmissions, net_.num_nodes());
}

TEST_F(LossyFixture, TruncatedFloodReportsNonQuiescent) {
  const LinkLayer layer =
      build_link_layer(net_.positions, UnitDiskModel(net_.radius));
  LossyFloodOptions opts;
  opts.max_rounds = 2;
  const LossyFloodResult r = lossy_flood(layer, 0, opts);
  EXPECT_FALSE(r.quiescent);  // cut off mid-flight, not loss-induced
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.stats.drops, 0u);
}

TEST_F(LossyFixture, LossyFloodDeterministicInSeed) {
  const LinkLayer layer = with_uniform_loss(
      build_link_layer(net_.positions, UnitDiskModel(net_.radius)), 0.4);

  LossyFloodOptions opts;
  opts.seed = 77;
  const LossyFloodResult a = lossy_flood(layer, 0, opts);
  const LossyFloodResult b = lossy_flood(layer, 0, opts);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_TRUE(same_stats(a.stats, b.stats));
  EXPECT_GT(a.stats.drops, 0u);

  // A different seed draws a different loss pattern (fixed topology, so
  // this is a deterministic statement about these two seeds, not a flake).
  opts.seed = 78;
  const LossyFloodResult c = lossy_flood(layer, 0, opts);
  EXPECT_FALSE(same_stats(a.stats, c.stats));
}

TEST_F(LossyFixture, RetryBudgetRecoversDeliveries) {
  const LinkLayer layer = with_uniform_loss(
      build_link_layer(net_.positions, UnitDiskModel(net_.radius)), 0.4);
  double without = 0.0, with_retry = 0.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    LossyFloodOptions opts;
    opts.seed = seed;
    without += lossy_flood(layer, 0, opts).delivery_ratio;
    opts.retry_budget = 2;
    const LossyFloodResult r = lossy_flood(layer, 0, opts);
    with_retry += r.delivery_ratio;
    EXPECT_GT(r.stats.retransmissions, 0u);
  }
  EXPECT_GT(with_retry, without);
}

TEST_F(LossyFixture, ZeroLossClusteringBitIdenticalToLegacyPipeline) {
  // Regression guard: QuasiUnitDisk(r_min == r_max) with no drops must give
  // the same graph, the same distributed election (message-for-message, so
  // stats match too), and the same clustering as the legacy unit-disk path.
  const QuasiUnitDiskModel model(net_.radius, net_.radius);
  const LinkLayer layer = build_link_layer(net_.positions, model);
  ASSERT_EQ(layer.graph().edge_list(), net_.graph.edge_list());

  const auto prio = make_priorities(net_.graph, PriorityRule::kLowestId);
  for (const Hops k : {1u, 2u, 3u}) {
    SimStats legacy_stats;
    const Clustering legacy = run_distributed_clustering(
        net_.graph, k, prio, AffiliationRule::kIdBased, &legacy_stats);

    LinkDelivery delivery(layer, 4242);
    DeliveryOptions opts;
    opts.model = &delivery;
    SimStats lossy_stats;
    const Clustering lossy =
        run_distributed_clustering(layer.graph(), k, prio,
                                   AffiliationRule::kIdBased, &lossy_stats,
                                   opts);

    EXPECT_EQ(lossy.heads, legacy.heads) << "k = " << k;
    EXPECT_EQ(lossy.head_of, legacy.head_of) << "k = " << k;
    EXPECT_EQ(lossy.dist_to_head, legacy.dist_to_head) << "k = " << k;
    EXPECT_EQ(lossy.cluster_of, legacy.cluster_of) << "k = " << k;
    EXPECT_EQ(lossy.election_rounds, legacy.election_rounds) << "k = " << k;
    EXPECT_TRUE(same_stats(lossy_stats, legacy_stats)) << "k = " << k;
  }
}

TEST(LossyTrial, DeterministicInSeed) {
  LossyExperimentConfig cfg;
  cfg.num_nodes = 80;
  cfg.radio = RadioKind::kQuasiUnitDisk;
  cfg.ambient_loss = 0.2;
  cfg.retry_budget = 1;
  cfg.radius = resolve_lossy_radius(cfg, 616);

  Rng a(616), b(616);
  const LossyTrialMetrics m1 = run_lossy_trial(cfg, a);
  const LossyTrialMetrics m2 = run_lossy_trial(cfg, b);
  EXPECT_EQ(m1.blind_delivery, m2.blind_delivery);
  EXPECT_EQ(m1.cds_delivery, m2.cds_delivery);
  EXPECT_EQ(m1.cds_transmissions, m2.cds_transmissions);
  EXPECT_EQ(m1.drops, m2.drops);
  EXPECT_EQ(m1.retransmissions, m2.retransmissions);
  EXPECT_EQ(m1.backbone_survival, m2.backbone_survival);
}

TEST(LossyTrial, IdealRadioIsLossFree) {
  LossyExperimentConfig cfg;
  cfg.num_nodes = 80;
  cfg.radio = RadioKind::kUnitDisk;
  cfg.radius = resolve_lossy_radius(cfg, 717);

  Rng rng(717);
  const LossyTrialMetrics m = run_lossy_trial(cfg, rng);
  EXPECT_EQ(m.blind_delivery, 1.0);
  EXPECT_EQ(m.cds_delivery, 1.0);
  EXPECT_EQ(m.drops, 0.0);
  EXPECT_EQ(m.retransmissions, 0.0);
  EXPECT_EQ(m.backbone_survival, 1.0);
}

}  // namespace
}  // namespace khop
