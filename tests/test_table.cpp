// Unit tests for the text-table / CSV emitter.
#include <gtest/gtest.h>

#include <sstream>

#include "khop/common/error.hpp"
#include "khop/exp/table.hpp"

namespace khop {
namespace {

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"N", "CDS"});
  t.add_row({"50", "31.2"});
  t.add_row({"200", "101.9"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("101.9"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Right alignment: "50" is padded to the width of "200".
  EXPECT_NE(out.find(" 50"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, RejectsAityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(Fmt, FormatsDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace khop
