// Unit tests for geometry, placement, and degree calibration.
#include <gtest/gtest.h>

#include <numbers>

#include "khop/common/error.hpp"
#include "khop/geom/degree_calibration.hpp"
#include "khop/geom/placement.hpp"
#include "khop/geom/point.hpp"

namespace khop {
namespace {

TEST(Point, DistanceMatchesPythagoras) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {4, 5}), 25.0);
}

TEST(Field, ContainsRespectsBounds) {
  const Field f{100.0};
  EXPECT_TRUE(f.contains({0, 0}));
  EXPECT_TRUE(f.contains({100, 100}));
  EXPECT_FALSE(f.contains({100.01, 50}));
  EXPECT_FALSE(f.contains({-0.01, 50}));
  EXPECT_DOUBLE_EQ(f.area(), 10000.0);
}

TEST(Placement, UniformStaysInField) {
  Rng rng(3);
  const Field f{100.0};
  const auto pts = place_uniform(500, f, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const auto& p : pts) EXPECT_TRUE(f.contains(p));
}

TEST(Placement, UniformIsDeterministic) {
  const Field f{100.0};
  Rng a(9), b(9);
  EXPECT_EQ(place_uniform(50, f, a), place_uniform(50, f, b));
}

TEST(Placement, UniformCoversAllQuadrants) {
  Rng rng(5);
  const Field f{100.0};
  const auto pts = place_uniform(400, f, rng);
  int quad[4] = {0, 0, 0, 0};
  for (const auto& p : pts) {
    quad[(p.x >= 50.0 ? 1 : 0) + (p.y >= 50.0 ? 2 : 0)]++;
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(quad[q], 50) << "quadrant " << q;
}

TEST(Placement, JitteredGridStaysInField) {
  Rng rng(4);
  const Field f{100.0};
  const auto pts = place_jittered_grid(37, f, rng);
  ASSERT_EQ(pts.size(), 37u);
  for (const auto& p : pts) EXPECT_TRUE(f.contains(p));
}

TEST(Placement, RejectsZeroNodes) {
  Rng rng(1);
  EXPECT_THROW(place_uniform(0, Field{}, rng), InvalidArgument);
}

TEST(Calibration, AnalyticRadiusMatchesFormula) {
  const Field f{100.0};
  const double r = analytic_radius(100, 6.0, f);
  EXPECT_NEAR(r, std::sqrt(6.0 * 10000.0 / (std::numbers::pi * 99.0)), 1e-12);
}

TEST(Calibration, AnalyticRadiusRejectsBadInput) {
  EXPECT_THROW(analytic_radius(1, 6.0, Field{}), InvalidArgument);
  EXPECT_THROW(analytic_radius(10, 0.0, Field{}), InvalidArgument);
}

TEST(Calibration, MeasuredMeanDegreeOnKnownLayout) {
  // Three collinear points 1 apart: radius 1.5 links the two adjacent pairs.
  const std::vector<Point2> pts{{0, 0}, {1, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(measured_mean_degree(pts, 1.5), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(measured_mean_degree(pts, 2.5), 2.0);
}

TEST(Calibration, MeasuredMeanDegreeSafeForDegenerateRadii) {
  // A radius tiny relative to the point spread must not size a
  // (span/r)^2-cell grid (the SpatialGrid caps its cell count).
  Rng rng(99);
  const std::vector<Point2> pts = place_uniform(50, Field{100.0}, rng);
  EXPECT_DOUBLE_EQ(measured_mean_degree(pts, 1e-7), 0.0);
  // Duplicate points still count as linked at any positive radius.
  const std::vector<Point2> twins{{5, 5}, {5, 5}, {90, 90}};
  EXPECT_DOUBLE_EQ(measured_mean_degree(twins, 1e-7), 2.0 / 3.0);
}

TEST(Calibration, CalibratedRadiusHitsTargetDegree) {
  const Field f{100.0};
  const std::size_t n = 100;
  const double target = 6.0;
  const double r = calibrate_radius(n, target, f, Rng(1234));

  // Border effects mean the calibrated radius must exceed the analytic one.
  EXPECT_GT(r, analytic_radius(n, target, f));

  // Validate on fresh placements.
  Rng rng(777);
  double total = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    Rng child = rng.spawn(static_cast<std::uint64_t>(i));
    total += measured_mean_degree(place_uniform(n, f, child), r);
  }
  EXPECT_NEAR(total / reps, target, 0.35);
}

TEST(Calibration, CalibrationIsDeterministic) {
  const Field f{100.0};
  EXPECT_DOUBLE_EQ(calibrate_radius(80, 10.0, f, Rng(5)),
                   calibrate_radius(80, 10.0, f, Rng(5)));
}

TEST(Calibration, RejectsInfeasibleTargets) {
  EXPECT_THROW(calibrate_radius(10, 9.5, Field{}, Rng(1)), InvalidArgument);
  EXPECT_THROW(calibrate_radius(10, 0.0, Field{}, Rng(1)), InvalidArgument);
}

}  // namespace
}  // namespace khop
