// Unit tests for recursive high-level clustering.
#include <gtest/gtest.h>

#include "khop/common/error.hpp"
#include "khop/graph/components.hpp"
#include "khop/nbr/hierarchy.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

AdHocNetwork make_net(std::uint64_t seed, std::size_t n = 150) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  Rng rng(seed);
  return generate_network(cfg, rng);
}

TEST(Hierarchy, LevelsShrinkMonotonically) {
  const AdHocNetwork net = make_net(1901);
  const ClusterHierarchy h = build_hierarchy(net.graph, 1, 5);
  ASSERT_GE(h.depth(), 2u);
  for (std::size_t l = 1; l < h.depth(); ++l) {
    EXPECT_LT(h.levels[l].clustering.heads.size(),
              h.levels[l - 1].clustering.heads.size())
        << "level " << l;
  }
}

TEST(Hierarchy, StopsAtSingleHead) {
  const AdHocNetwork net = make_net(1902, 100);
  const ClusterHierarchy h = build_hierarchy(net.graph, 2, 10);
  // Either the budget was exhausted or the top level has exactly one head.
  if (h.depth() < 10) {
    EXPECT_EQ(h.levels.back().clustering.heads.size(), 1u);
  }
}

TEST(Hierarchy, PhysicalHeadsAreLevelZeroNodes) {
  const AdHocNetwork net = make_net(1903, 120);
  const ClusterHierarchy h = build_hierarchy(net.graph, 1, 4);
  for (std::size_t l = 0; l < h.depth(); ++l) {
    EXPECT_EQ(h.levels[l].physical_heads.size(),
              h.levels[l].clustering.heads.size());
    for (NodeId pid : h.levels[l].physical_heads) {
      EXPECT_LT(pid, net.num_nodes());
    }
    // Every level-l physical head must be a level-(l-1) physical head too.
    if (l > 0) {
      for (NodeId pid : h.levels[l].physical_heads) {
        EXPECT_TRUE(std::binary_search(h.levels[l - 1].physical_heads.begin(),
                                       h.levels[l - 1].physical_heads.end(),
                                       pid))
            << "level " << l << " head " << pid;
      }
    }
  }
}

TEST(Hierarchy, HeadAtLevelChainsMembership) {
  const AdHocNetwork net = make_net(1904, 100);
  const ClusterHierarchy h = build_hierarchy(net.graph, 1, 3);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    // Level 0: the node's own clusterhead.
    EXPECT_EQ(h.head_at_level(v, 0), h.levels[0].clustering.head_of[v]);
    // Every level's responsible head is one of that level's heads.
    for (std::size_t l = 0; l < h.depth(); ++l) {
      const NodeId head = h.head_at_level(v, l);
      EXPECT_TRUE(std::binary_search(h.levels[l].physical_heads.begin(),
                                     h.levels[l].physical_heads.end(), head))
          << "v=" << v << " level=" << l;
    }
  }
}

TEST(Hierarchy, LevelGraphsAreConnected) {
  const AdHocNetwork net = make_net(1905, 130);
  const ClusterHierarchy h = build_hierarchy(net.graph, 1, 5);
  for (std::size_t l = 0; l < h.depth(); ++l) {
    EXPECT_TRUE(is_connected(h.levels[l].graph)) << "level " << l;
  }
}

TEST(Hierarchy, SingleLevelWhenRequested) {
  const AdHocNetwork net = make_net(1906, 60);
  const ClusterHierarchy h = build_hierarchy(net.graph, 2, 1);
  EXPECT_EQ(h.depth(), 1u);
}

TEST(Hierarchy, RejectsBadArguments) {
  const AdHocNetwork net = make_net(1907, 40);
  EXPECT_THROW(build_hierarchy(net.graph, 1, 0), InvalidArgument);
  EXPECT_THROW(build_hierarchy(net.graph, 0, 2), InvalidArgument);
}

}  // namespace
}  // namespace khop
