// Durability subsystem unit tests: CRC32C vectors, binary codec bounds,
// WAL segment roundtrip + torn-tail tolerance, snapshot roundtrip + the
// bit-flip/truncation corruption sweeps (clean error or fallback, never
// UB — the CI job runs this file under ASan+UBSan), retention, fallback
// to older generations, publish-watermark continuity, and the committed
// fixture formats.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/dynamic/persist/binio.hpp"
#include "khop/dynamic/persist/crash_point.hpp"
#include "khop/dynamic/persist/crc32c.hpp"
#include "khop/dynamic/persist/snapshot.hpp"
#include "khop/dynamic/persist/store.hpp"
#include "khop/dynamic/persist/wal.hpp"
#include "khop/net/generator.hpp"
#include "khop/obs/metrics.hpp"

namespace khop {
namespace {

namespace fs = std::filesystem;
using persist::ByteReader;
using persist::ByteWriter;
using persist::crc32c;
using persist::DurabilityOptions;
using persist::DurableChurnEngine;
using persist::RecoveryReport;
using persist::SnapshotData;
using persist::WalSegment;
using persist::WalWriter;

Graph make_network(std::uint64_t seed, std::size_t n, double degree = 8.0) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  Rng rng(seed);
  return generate_network(cfg, rng).graph;
}

ChurnTrace make_trace(const Graph& g, std::size_t events, std::uint64_t seed) {
  ChurnTraceConfig cfg;
  cfg.num_events = events;
  return ChurnTrace::generate(g, cfg, seed);
}

/// Fresh scratch directory under the build tree's temp space.
struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name) {
    path = (fs::temp_directory_path() / ("khop_persist_" + name)).string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The maintained public state two engines must agree on bit-exactly.
/// (cluster_of/election_rounds are not maintained under churn; audit counts
/// differ between a recovered and an uninterrupted engine by design.)
void expect_same_state(const ChurnEngine& a, const ChurnEngine& b) {
  EXPECT_EQ(a.clustering().heads, b.clustering().heads);
  EXPECT_EQ(a.clustering().head_of, b.clustering().head_of);
  EXPECT_EQ(a.clustering().dist_to_head, b.clustering().dist_to_head);
  EXPECT_EQ(a.backbone().heads, b.backbone().heads);
  EXPECT_EQ(a.backbone().gateways, b.backbone().gateways);
  EXPECT_EQ(a.backbone().virtual_links, b.backbone().virtual_links);
  EXPECT_EQ(a.num_components(), b.num_components());
  EXPECT_EQ(a.graph().num_alive(), b.graph().num_alive());
  EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());
  EXPECT_EQ(a.stats().events, b.stats().events);
  EXPECT_EQ(a.stats().orphans, b.stats().orphans);
  EXPECT_EQ(a.stats().reaffiliations, b.stats().reaffiliations);
  EXPECT_EQ(a.stats().new_heads, b.stats().new_heads);
  EXPECT_EQ(a.stats().touched_nodes, b.stats().touched_nodes);
  EXPECT_EQ(a.stats().partitions, b.stats().partitions);
  EXPECT_EQ(a.stats().merges, b.stats().merges);
  // links_ equality via the canonical store dump.
  ASSERT_EQ(a.virtual_links().all().size(), b.virtual_links().all().size());
}

// ---------------------------------------------------------------------------
// CRC32C

TEST(PersistCrc32c, KnownVectors) {
  // The iSCSI check value (RFC 3720 appendix B.4) plus degenerate inputs.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(PersistCrc32c, SliceBoundariesAgree) {
  // The slice-by-8 fast loop and the byte-at-a-time tail must agree for
  // every length straddling the 8-byte fold boundary.
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t len = 0; len <= data.size(); ++len) {
    std::uint32_t slow = ~0u;
    for (std::size_t i = 0; i < len; ++i) {
      slow ^= static_cast<unsigned char>(data[i]);
      for (int b = 0; b < 8; ++b) {
        slow = (slow & 1u) ? (slow >> 1) ^ 0x82F63B78u : slow >> 1;
      }
    }
    EXPECT_EQ(crc32c(data.data(), len), ~slow) << len;
  }
}

// ---------------------------------------------------------------------------
// Binary codec

TEST(PersistBinio, RoundTripAndBounds) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_bytes("xyz");
  const std::string bytes = std::move(w).take();
  EXPECT_EQ(bytes.size(), 1u + 4 + 8 + 3);

  ByteReader r(bytes);
  EXPECT_EQ(r.get_u8(), 0xABu);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_bytes(3), "xyz");
  EXPECT_TRUE(r.at_end());
  EXPECT_THROW(r.get_u8(), CorruptState);

  ByteReader short_read(std::string_view("ab"));
  EXPECT_THROW(short_read.get_u32(), CorruptState);
}

// ---------------------------------------------------------------------------
// WAL

ChurnEvent join_event(NodeId a, std::vector<NodeId> nbrs) {
  ChurnEvent e;
  e.type = ChurnEventType::kJoin;
  e.a = a;
  e.neighbors = std::move(nbrs);
  return e;
}

TEST(PersistWal, RecordRoundTrip) {
  ChurnEvent e = join_event(7, {1, 2, 9});
  const ChurnEvent back = persist::decode_wal_record(persist::encode_wal_record(e));
  EXPECT_EQ(back.type, e.type);
  EXPECT_EQ(back.a, e.a);
  EXPECT_EQ(back.neighbors, e.neighbors);
  EXPECT_THROW(persist::decode_wal_record("\xFF"), CorruptState);
}

TEST(PersistWal, SegmentRoundTripAndFlushBatching) {
  TempDir dir("wal_roundtrip");
  const std::string path = dir.path + "/wal-000000000005.khwal";
  WalWriter w = WalWriter::create(path, 5, /*flush_every=*/3);
  w.append(join_event(1, {2}));
  w.append(join_event(3, {}));
  // Two records buffered, none flushed: the file holds only the header.
  WalSegment before = persist::read_wal_file(path, 5);
  EXPECT_TRUE(before.clean);
  EXPECT_TRUE(before.events.empty());

  w.append(join_event(4, {5, 6}));  // third append crosses the batch size
  WalSegment after = persist::read_wal_file(path, 5);
  EXPECT_TRUE(after.clean);
  ASSERT_EQ(after.events.size(), 3u);
  EXPECT_EQ(after.start, 5u);
  EXPECT_EQ(after.events[2].neighbors, (std::vector<NodeId>{5, 6}));
  w.close();
}

TEST(PersistWal, TornTailKeepsValidPrefix) {
  TempDir dir("wal_torn");
  const std::string path = dir.path + "/wal-000000000000.khwal";
  WalWriter w = WalWriter::create(path, 0, 1);
  w.append(join_event(1, {2}));
  w.append(join_event(3, {4}));
  w.close();

  const std::string full = read_file(path);
  // Both records are one-neighbor joins: 17-byte payload + 8-byte frame.
  const std::size_t header = 20, frame = 25;
  ASSERT_EQ(full.size(), header + 2 * frame);
  // Every proper prefix must parse to a valid (possibly shorter) event run,
  // never throw, never produce garbage events. A prefix is clean exactly
  // when the cut lands on a record boundary past the header.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_file(path, full.substr(0, cut));
    const WalSegment seg = persist::read_wal_file(path, 0);
    const std::size_t want =
        cut < header ? 0 : (cut - header) / frame;
    EXPECT_EQ(seg.events.size(), want) << "cut " << cut;
    EXPECT_EQ(seg.clean, cut >= header && (cut - header) % frame == 0)
        << "cut " << cut;
    for (const ChurnEvent& e : seg.events) {
      EXPECT_EQ(e.type, ChurnEventType::kJoin);
    }
  }
}

TEST(PersistWal, CorruptHeaderIsTornEmpty) {
  TempDir dir("wal_header");
  const std::string path = dir.path + "/wal-000000000000.khwal";
  WalWriter w = WalWriter::create(path, 0, 1);
  w.append(join_event(1, {2}));
  w.close();

  std::string bytes = read_file(path);
  bytes[3] ^= 0x40;  // damage the magic
  write_file(path, bytes);
  const WalSegment seg = persist::read_wal_file(path, 0);
  EXPECT_FALSE(seg.clean);
  EXPECT_TRUE(seg.events.empty());

  // A name/header cursor mismatch is equally distrusted.
  WalWriter w2 = WalWriter::create(path, 9, 1);
  w2.close();
  const WalSegment mismatch = persist::read_wal_file(path, 0);
  EXPECT_FALSE(mismatch.clean);
  EXPECT_TRUE(mismatch.events.empty());
}

TEST(PersistWal, BitFlipSweepNeverUB) {
  TempDir dir("wal_flip");
  const std::string path = dir.path + "/wal-000000000000.khwal";
  WalWriter w = WalWriter::create(path, 0, 1);
  for (NodeId i = 0; i < 8; ++i) w.append(join_event(i, {i + 1, i + 2}));
  w.close();
  const std::string full = read_file(path);

  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    std::string mut = full;
    mut[byte] ^= 0x10;
    write_file(path, mut);
    // Tolerant read: any outcome from "all events" (flip landed in dead
    // space — impossible here, every byte is load-bearing) down to an
    // empty dirty segment is fine; crashing or hanging is not.
    const WalSegment seg = persist::read_wal_file(path, 0);
    EXPECT_LE(seg.events.size(), 8u);
  }
}

// ---------------------------------------------------------------------------
// Snapshot

TEST(PersistSnapshot, RoundTripRestoresBitExact) {
  const Graph g = make_network(4201, 80);
  ChurnEngine engine(g, 2, Pipeline::kAcMesh);
  const ChurnTrace trace = make_trace(g, 400, 99);
  for (std::size_t i = 0; i < 300; ++i) engine.apply(trace.events()[i]);

  const std::string bytes = persist::encode_snapshot(engine, 300);
  SnapshotData snap = persist::decode_snapshot(bytes);
  EXPECT_EQ(snap.cursor, 300u);
  ChurnEngine restored = ChurnEngine::restore(std::move(snap.state));
  expect_same_state(engine, restored);
  EXPECT_EQ(restored.audit(), "");

  // And the recovered engine behaves identically from here on.
  for (std::size_t i = 300; i < 400; ++i) {
    engine.apply(trace.events()[i]);
    restored.apply(trace.events()[i]);
  }
  expect_same_state(engine, restored);
}

TEST(PersistSnapshot, EncodingIsDeterministic) {
  const Graph g = make_network(4202, 60);
  ChurnEngine engine(g, 2, Pipeline::kNcLmst);
  const ChurnTrace trace = make_trace(g, 150, 3);
  for (const ChurnEvent& e : trace.events()) engine.apply(e);
  EXPECT_EQ(persist::encode_snapshot(engine, 150),
            persist::encode_snapshot(engine, 150));
}

TEST(PersistSnapshot, TruncationSweepAlwaysCleanError) {
  const Graph g = make_network(4203, 40, 6.0);
  ChurnEngine engine(g, 1, Pipeline::kNcMesh);
  const std::string bytes = persist::encode_snapshot(engine, 0);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(persist::decode_snapshot(bytes.substr(0, cut)), Error)
        << "prefix length " << cut;
  }
  // Trailing garbage after a complete snapshot is corruption too.
  EXPECT_THROW(persist::decode_snapshot(bytes + "x"), CorruptState);
}

TEST(PersistSnapshot, BitFlipSweepAlwaysCleanError) {
  const Graph g = make_network(4204, 40, 6.0);
  ChurnEngine engine(g, 1, Pipeline::kNcMesh);
  const ChurnTrace trace = make_trace(g, 50, 11);
  for (const ChurnEvent& e : trace.events()) engine.apply(e);
  const std::string bytes = persist::encode_snapshot(engine, 50);

  // Flip one bit in every byte. Decoding must either throw a khop error or
  // — for flips confined to section framing that cancels out (none exist,
  // but the property is what matters) — produce a state that restore()
  // still validates. Anything else (crash, UB, silent bad state) fails.
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string mut = bytes;
    mut[byte] ^= 0x04;
    try {
      SnapshotData snap = persist::decode_snapshot(mut);
      ChurnEngine restored = ChurnEngine::restore(std::move(snap.state));
      EXPECT_EQ(restored.audit(), "") << "byte " << byte;
    } catch (const Error&) {
      // clean rejection - the expected outcome
    }
  }
}

// ---------------------------------------------------------------------------
// DurableChurnEngine

TEST(PersistStore, CleanRunMatchesPlainEngine) {
  const Graph g = make_network(4205, 80);
  const ChurnTrace trace = make_trace(g, 400, 21);
  TempDir dir("clean_run");

  DurabilityOptions dopts;
  dopts.snapshot_every = 64;
  dopts.wal_flush_every = 4;
  DurableChurnEngine durable =
      DurableChurnEngine::create(g, 2, Pipeline::kAcMesh, dir.path, dopts);
  ChurnEngine plain(g, 2, Pipeline::kAcMesh);
  for (const ChurnEvent& e : trace.events()) {
    durable.apply(e);
    plain.apply(e);
  }
  EXPECT_EQ(durable.cursor(), 400u);
  expect_same_state(durable.engine(), plain);
  EXPECT_EQ(durable.engine().audit(), "");
}

TEST(PersistStore, RecoverAfterCleanShutdown) {
  const Graph g = make_network(4206, 80);
  const ChurnTrace trace = make_trace(g, 300, 33);
  TempDir dir("recover_clean");

  DurabilityOptions dopts;
  dopts.snapshot_every = 64;
  {
    DurableChurnEngine durable =
        DurableChurnEngine::create(g, 2, Pipeline::kNcLmst, dir.path, dopts);
    for (const ChurnEvent& e : trace.events()) durable.apply(e);
    durable.flush_wal();
  }
  ChurnEngine plain(g, 2, Pipeline::kNcLmst);
  for (const ChurnEvent& e : trace.events()) plain.apply(e);

  RecoveryReport rep;
  DurableChurnEngine back =
      DurableChurnEngine::recover(dir.path, &rep, dopts);
  EXPECT_EQ(rep.cursor, 300u);
  EXPECT_EQ(rep.snapshot_cursor, 256u);  // last multiple of snapshot_every
  EXPECT_EQ(rep.replayed_events, 44u);
  EXPECT_TRUE(rep.fallbacks.empty());
  expect_same_state(back.engine(), plain);
  EXPECT_EQ(back.engine().audit(), "");
}

TEST(PersistStore, RetentionKeepsConfiguredGenerations) {
  const Graph g = make_network(4207, 60);
  const ChurnTrace trace = make_trace(g, 300, 5);
  TempDir dir("retention");

  DurabilityOptions dopts;
  dopts.snapshot_every = 50;
  dopts.keep_snapshots = 2;
  DurableChurnEngine durable =
      DurableChurnEngine::create(g, 2, Pipeline::kAcMesh, dir.path, dopts);
  for (const ChurnEvent& e : trace.events()) durable.apply(e);

  std::vector<std::string> snaps, wals;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    const std::string name = e.path().filename().string();
    if (name.ends_with(".khsnp")) snaps.push_back(name);
    if (name.ends_with(".khwal")) wals.push_back(name);
  }
  EXPECT_EQ(snaps.size(), 2u);  // generations 250 and 300
  // Every surviving segment serves a kept snapshot (none older than 250).
  for (const std::string& w : wals) {
    EXPECT_GE(w, std::string("wal-000000000250.khwal")) << w;
  }
}

TEST(PersistStore, CorruptNewestSnapshotFallsBack) {
  const Graph g = make_network(4208, 80);
  const ChurnTrace trace = make_trace(g, 200, 13);
  TempDir dir("fallback");

  DurabilityOptions dopts;
  dopts.snapshot_every = 64;
  dopts.keep_snapshots = 3;
  {
    DurableChurnEngine durable =
        DurableChurnEngine::create(g, 2, Pipeline::kAcMesh, dir.path, dopts);
    for (const ChurnEvent& e : trace.events()) durable.apply(e);
    durable.flush_wal();
  }
  // Flip a byte deep inside the newest snapshot (cursor 192).
  const std::string newest = dir.path + "/snap-000000000192.khsnp";
  std::string bytes = read_file(newest);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(newest, bytes);

  RecoveryReport rep;
  DurableChurnEngine back =
      DurableChurnEngine::recover(dir.path, &rep, dopts);
  ASSERT_EQ(rep.fallbacks.size(), 1u);
  EXPECT_NE(rep.fallbacks[0].find("snap-000000000192"), std::string::npos)
      << rep.fallbacks[0];
  EXPECT_EQ(rep.snapshot_cursor, 128u);
  EXPECT_EQ(rep.cursor, 200u);  // WAL replay crossed the corrupt generation

  ChurnEngine plain(g, 2, Pipeline::kAcMesh);
  for (const ChurnEvent& e : trace.events()) plain.apply(e);
  expect_same_state(back.engine(), plain);
  EXPECT_EQ(back.engine().audit(), "");
}

TEST(PersistStore, AllSnapshotsCorruptIsCleanError) {
  const Graph g = make_network(4209, 60);
  TempDir dir("all_corrupt");
  {
    DurableChurnEngine durable = DurableChurnEngine::create(
        g, 2, Pipeline::kAcMesh, dir.path, DurabilityOptions{});
  }
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().filename().string().ends_with(".khsnp")) {
      std::string bytes = read_file(e.path().string());
      bytes[0] ^= 0xFF;
      write_file(e.path().string(), bytes);
    }
  }
  EXPECT_THROW(DurableChurnEngine::recover(dir.path), CorruptState);
  // An empty directory reports the same clean failure.
  TempDir empty("never_seeded");
  EXPECT_THROW(DurableChurnEngine::recover(empty.path), CorruptState);
}

// ---------------------------------------------------------------------------
// Publish watermark continuity

TEST(PersistStats, PublishIsDeltaBasedAcrossRestore) {
  const Graph g = make_network(4210, 60);
  const ChurnTrace trace = make_trace(g, 250, 17);
  obs::Registry& reg = obs::Registry::global();
  reg.reset();

  ChurnEngine engine(g, 2, Pipeline::kAcMesh);
  for (std::size_t i = 0; i < 200; ++i) {
    engine.apply(trace.events()[i]);
    if (i == 99) engine.publish_stats();  // mid-run export
  }
  engine.publish_stats();
  EXPECT_EQ(reg.counter("churn.events").value(), 200u);
  engine.publish_stats();  // idempotent at a quiescent point
  EXPECT_EQ(reg.counter("churn.events").value(), 200u);

  // Snapshot carries the watermark: a restored engine re-publishes nothing
  // it already exported, only what it applies afterwards.
  const std::string bytes = persist::encode_snapshot(engine, 200);
  SnapshotData snap = persist::decode_snapshot(bytes);
  ChurnEngine restored = ChurnEngine::restore(std::move(snap.state));
  restored.publish_stats();
  EXPECT_EQ(reg.counter("churn.events").value(), 200u);

  for (std::size_t i = 200; i < 250; ++i) restored.apply(trace.events()[i]);
  restored.publish_stats();
  EXPECT_EQ(reg.counter("churn.events").value(), 250u);
  reg.reset();
}

// ---------------------------------------------------------------------------
// Committed fixtures (cross-version format stability)

std::string fixture_dir() {
  return std::string(KHOP_SOURCE_DIR) + "/tests/fixtures/persist";
}

TEST(PersistFixtures, CommittedSnapshotLoads) {
  const std::string path = fixture_dir() + "/snapshot_n60_k2_acmesh.khsnp";
  ASSERT_TRUE(fs::exists(path)) << path;
  SnapshotData snap = persist::load_snapshot_file(path);
  EXPECT_EQ(snap.cursor, 120u);
  ChurnEngine restored = ChurnEngine::restore(std::move(snap.state));
  EXPECT_EQ(restored.k(), 2u);
  EXPECT_EQ(restored.pipeline(), Pipeline::kAcMesh);
  EXPECT_EQ(restored.audit(), "");
}

TEST(PersistFixtures, CommittedWalLoads) {
  const std::string path = fixture_dir() + "/wal_n60_k2_acmesh.khwal";
  ASSERT_TRUE(fs::exists(path)) << path;
  const WalSegment seg = persist::read_wal_file(path, 120);
  EXPECT_TRUE(seg.clean) << seg.why;
  EXPECT_EQ(seg.start, 120u);
  EXPECT_FALSE(seg.events.empty());
}

}  // namespace
}  // namespace khop
