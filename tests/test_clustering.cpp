// Unit tests for the paper's iterative k-hop clustering (phase 1), with
// hand-computed expectations on small topologies.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/cluster/validate.hpp"
#include "khop/common/error.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

Graph path_graph(std::size_t n) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(Clustering, PathGraphK2HandComputed) {
  // Path 0..9, k=2, lowest id. Election proceeds left to right:
  // heads {0,3,6,9}, members join the head that claimed them.
  const Graph g = path_graph(10);
  const Clustering c = khop_clustering(g, 2);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0, 3, 6, 9}));
  EXPECT_EQ(c.head_of,
            (std::vector<NodeId>{0, 0, 0, 3, 3, 3, 6, 6, 6, 9}));
  EXPECT_EQ(c.dist_to_head,
            (std::vector<Hops>{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}));
  EXPECT_EQ(c.election_rounds, 4u);
  EXPECT_TRUE(validate_clustering(g, c).empty());
}

TEST(Clustering, PathGraphK1HandComputed) {
  // Path 0..5, k=1: heads {0,2,4}.
  const Graph g = path_graph(6);
  const Clustering c = khop_clustering(g, 1);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0, 2, 4}));
  EXPECT_EQ(c.head_of, (std::vector<NodeId>{0, 0, 2, 2, 4, 4}));
}

TEST(Clustering, SingleClusterWhenKCoversGraph) {
  const Graph g = path_graph(5);
  const Clustering c = khop_clustering(g, 4);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0}));
  EXPECT_EQ(c.election_rounds, 1u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(c.head_of[v], 0u);
}

TEST(Clustering, AffiliationIdVsDistance) {
  // Path 0-2-3-1, k=2: heads {0,1} elected in the same round. Node 3 sits
  // 2 hops from head 0 and 1 hop from head 1.
  const Graph g = Graph::from_edges(4, EdgeList{{0, 2}, {2, 3}, {3, 1}});

  const Clustering by_id = khop_clustering(g, 2, AffiliationRule::kIdBased);
  EXPECT_EQ(by_id.heads, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(by_id.head_of[3], 0u);  // smaller head id wins

  const Clustering by_dist =
      khop_clustering(g, 2, AffiliationRule::kDistanceBased);
  EXPECT_EQ(by_dist.head_of[3], 1u);  // nearer head wins
  EXPECT_EQ(by_dist.dist_to_head[3], 1u);
  EXPECT_EQ(by_dist.head_of[2], 0u);  // node 2 is nearer to 0 either way
}

TEST(Clustering, AffiliationSizeBalances) {
  // Same topology: size-based assignment splits members 2/3 across the two
  // heads instead of piling both on head 0.
  const Graph g = Graph::from_edges(4, EdgeList{{0, 2}, {2, 3}, {3, 1}});
  const Clustering c = khop_clustering(g, 2, AffiliationRule::kSizeBased);
  EXPECT_EQ(c.head_of[2], 0u);
  EXPECT_EQ(c.head_of[3], 1u);
}

TEST(Clustering, HeadsFormKHopIndependentSet) {
  Rng rng(202);
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  cfg.target_degree = 6.0;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 4; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    const std::string err = validate_clustering(net.graph, c);
    EXPECT_TRUE(err.empty()) << "k=" << k << ": " << err;
  }
}

TEST(Clustering, LargerKFewerHeads) {
  Rng rng(203);
  GeneratorConfig cfg;
  cfg.num_nodes = 150;
  const AdHocNetwork net = generate_network(cfg, rng);
  std::size_t prev = net.num_nodes() + 1;
  for (Hops k = 1; k <= 4; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    EXPECT_LE(c.heads.size(), prev) << "k=" << k;
    prev = c.heads.size();
  }
}

TEST(Clustering, HighestDegreePriorityElectsHubs) {
  // Star with center 5 (ids chosen so lowest-ID would pick a leaf).
  EdgeList edges;
  for (NodeId leaf : {0u, 1u, 2u, 3u, 4u}) edges.emplace_back(5, leaf);
  const Graph g = Graph::from_edges(6, edges);
  const auto prio = make_priorities(g, PriorityRule::kHighestDegree);
  const Clustering c = khop_clustering(g, 1, prio);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{5}));
}

TEST(Clustering, EnergyPriorityPicksFreshestNode) {
  const Graph g = path_graph(3);
  EnergyConfig ecfg;
  ecfg.initial = 10.0;
  ecfg.clusterhead_cost = 6.0;
  EnergyState energy(ecfg, 3);
  // Drain node 0 and 1; node 2 has the most residual energy.
  energy.apply_epoch(
      {NodeRole::kClusterhead, NodeRole::kGateway, NodeRole::kMember});
  const auto prio =
      make_priorities(g, PriorityRule::kHighestEnergy, &energy);
  const Clustering c = khop_clustering(g, 2, prio);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{2}));
}

TEST(Clustering, RandomTimerPriorityIsValid) {
  Rng rng(5);
  GeneratorConfig cfg;
  cfg.num_nodes = 60;
  const AdHocNetwork net = generate_network(cfg, rng);
  Rng prio_rng(17);
  const auto prio =
      make_priorities(net.graph, PriorityRule::kRandomTimer, nullptr,
                      &prio_rng);
  const Clustering c = khop_clustering(net.graph, 2, prio);
  EXPECT_TRUE(validate_clustering(net.graph, c).empty());
}

TEST(Clustering, PriorityFactoriesEnforcePreconditions) {
  const Graph g = path_graph(3);
  EXPECT_THROW(make_priorities(g, PriorityRule::kHighestEnergy),
               InvalidArgument);
  EXPECT_THROW(make_priorities(g, PriorityRule::kRandomTimer),
               InvalidArgument);
}

TEST(Clustering, RejectsBadArguments) {
  const Graph g = path_graph(4);
  EXPECT_THROW(khop_clustering(g, 0), InvalidArgument);
  EXPECT_THROW(khop_clustering(Graph(3), 1), NotConnected);
  const std::vector<PriorityKey> short_prio(2);
  EXPECT_THROW(khop_clustering(g, 1, short_prio), InvalidArgument);
}

TEST(Clustering, ClusterMembersRoundTrip) {
  const Graph g = path_graph(10);
  const Clustering c = khop_clustering(g, 2);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < c.num_clusters(); ++i) {
    const auto members = c.cluster_members(i);
    total += members.size();
    for (NodeId m : members) EXPECT_EQ(c.cluster_of[m], i);
  }
  EXPECT_EQ(total, g.num_nodes());  // non-overlapping and exhaustive
}

TEST(Clustering, DeterministicAcrossCalls) {
  Rng rng(404);
  GeneratorConfig cfg;
  cfg.num_nodes = 90;
  const AdHocNetwork net = generate_network(cfg, rng);
  const Clustering a = khop_clustering(net.graph, 3);
  const Clustering b = khop_clustering(net.graph, 3);
  EXPECT_EQ(a.heads, b.heads);
  EXPECT_EQ(a.head_of, b.head_of);
}

}  // namespace
}  // namespace khop
