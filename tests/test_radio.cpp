// Unit tests for the radio link-model subsystem: the LinkModel ladder and
// the LinkLayer built from it. The load-bearing property is the regression
// guard: UnitDiskModel (and QuasiUnitDiskModel with r_min == r_max) must
// reproduce the legacy unit-disk graph bit-for-bit.
#include <gtest/gtest.h>

#include <vector>

#include "khop/common/error.hpp"
#include "khop/geom/placement.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/net/generator.hpp"
#include "khop/radio/link_layer.hpp"
#include "khop/radio/link_model.hpp"
#include "khop/radio/network_link.hpp"

namespace khop {
namespace {

TEST(UnitDiskModel, StepFunctionAtRadius) {
  const UnitDiskModel m(10.0);
  EXPECT_EQ(m.delivery_probability_sq(0.0), 1.0);
  EXPECT_EQ(m.delivery_probability_sq(100.0), 1.0);  // boundary inclusive
  EXPECT_EQ(m.delivery_probability_sq(100.0001), 0.0);
  EXPECT_EQ(m.max_range(), 10.0);
  EXPECT_THROW(UnitDiskModel(0.0), InvalidArgument);
}

TEST(QuasiUnitDiskModel, CertainInnerZoneLinearRamp) {
  const QuasiUnitDiskModel m(5.0, 10.0);
  EXPECT_EQ(m.delivery_probability_sq(25.0), 1.0);   // inner boundary
  EXPECT_EQ(m.delivery_probability_sq(100.01), 0.0); // beyond r_max
  const double mid = m.delivery_probability_sq(7.5 * 7.5);
  EXPECT_NEAR(mid, 0.5, 1e-12);
  // Monotone non-increasing through the transition zone.
  double prev = 1.0;
  for (double d = 5.0; d <= 10.0; d += 0.25) {
    const double p = m.delivery_probability_sq(d * d);
    EXPECT_LE(p, prev);
    prev = p;
  }
  EXPECT_THROW(QuasiUnitDiskModel(10.0, 5.0), InvalidArgument);
  EXPECT_THROW(QuasiUnitDiskModel(5.0, 10.0, 0.0), InvalidArgument);
}

TEST(QuasiUnitDiskModel, DegeneratesToUnitDisk) {
  const QuasiUnitDiskModel q(10.0, 10.0);
  const UnitDiskModel u(10.0);
  for (const double d2 : {0.0, 50.0, 99.999, 100.0, 100.0001, 400.0}) {
    EXPECT_EQ(q.delivery_probability_sq(d2), u.delivery_probability_sq(d2))
        << "d2 = " << d2;
  }
}

TEST(LogNormalShadowingModel, HalfDeliveryAtRHalfAndMonotone) {
  LogNormalShadowingModel::Params params;
  params.r_half = 20.0;
  const LogNormalShadowingModel m(params);
  EXPECT_NEAR(m.delivery_probability_sq(400.0), 0.5, 1e-12);
  EXPECT_EQ(m.delivery_probability_sq(0.0), 1.0);
  double prev = 1.0;
  for (double d = 1.0; d < 2.0 * m.max_range(); d *= 1.3) {
    const double p = m.delivery_probability_sq(d * d);
    EXPECT_LE(p, prev) << "d = " << d;
    prev = p;
  }
  // The solved max range brackets the cutoff.
  const double r = m.max_range();
  EXPECT_GT(r, params.r_half);
  EXPECT_GE(m.delivery_probability_sq(0.999 * r * 0.999 * r),
            params.cutoff_probability);
  EXPECT_EQ(m.delivery_probability_sq(1.001 * r * 1.001 * r), 0.0);
}

std::vector<Point2> seed_placement(std::uint64_t seed, std::size_t n = 150) {
  Rng rng(seed);
  return place_uniform(n, Field{100.0}, rng);
}

TEST(LinkLayer, UnitDiskReproducesLegacyGraphBitForBit) {
  for (const std::uint64_t seed : {401u, 402u, 403u, 404u}) {
    const std::vector<Point2> pts = seed_placement(seed);
    const double radius = 13.0;
    const Graph legacy = build_unit_disk_graph(pts, radius);
    const LinkLayer layer = build_link_layer(pts, UnitDiskModel(radius));
    ASSERT_EQ(layer.graph().edge_list(), legacy.edge_list())
        << "seed " << seed;
    for (const Link& l : layer.links()) {
      EXPECT_EQ(l.probability, 1.0);
      EXPECT_EQ(layer.probability(l.u, l.v), 1.0);
      EXPECT_EQ(layer.probability(l.v, l.u), 1.0);
    }
  }
}

TEST(LinkLayer, DegenerateQudgReproducesLegacyGraphBitForBit) {
  for (const std::uint64_t seed : {411u, 412u, 413u, 414u}) {
    const std::vector<Point2> pts = seed_placement(seed);
    const double radius = 13.0;
    const Graph legacy = build_unit_disk_graph(pts, radius);
    const LinkLayer layer =
        build_link_layer(pts, QuasiUnitDiskModel(radius, radius));
    ASSERT_EQ(layer.graph().edge_list(), legacy.edge_list())
        << "seed " << seed;
  }
}

TEST(LinkLayer, ProbabilityLookup) {
  // Three collinear points: {0,1} certain, {1,2} in the gray zone, {0,2}
  // out of range.
  const std::vector<Point2> pts = {{0.0, 0.0}, {4.0, 0.0}, {11.0, 0.0}};
  const QuasiUnitDiskModel m(5.0, 10.0);
  const LinkLayer layer = build_link_layer(pts, m);
  EXPECT_EQ(layer.probability(0, 1), 1.0);
  EXPECT_NEAR(layer.probability(1, 2), (10.0 - 7.0) / 5.0, 1e-12);
  EXPECT_EQ(layer.probability(0, 2), 0.0);
  EXPECT_EQ(layer.probability(1, 1), 0.0);
  EXPECT_EQ(layer.graph().num_edges(), 2u);
}

TEST(LinkLayer, MinProbabilityPrunesWeakLinks) {
  const std::vector<Point2> pts = {{0.0, 0.0}, {4.0, 0.0}, {9.5, 0.0}};
  const QuasiUnitDiskModel m(5.0, 10.0);
  // {1,2} has p = (10 - 5.5)/5 = 0.9; {0,2} has p = (10 - 9.5)/5 = 0.1.
  const LinkLayer all = build_link_layer(pts, m);
  EXPECT_EQ(all.graph().num_edges(), 3u);
  const LinkLayer pruned = build_link_layer(pts, m, 0.5);
  EXPECT_EQ(pruned.graph().num_edges(), 2u);
  EXPECT_EQ(pruned.probability(0, 2), 0.0);
}

TEST(LinkLayer, UniformLossScalesProbabilities) {
  const std::vector<Point2> pts = seed_placement(421, 60);
  const LinkLayer layer = build_link_layer(pts, UnitDiskModel(15.0));
  const LinkLayer lossy = with_uniform_loss(layer, 0.25);
  ASSERT_EQ(lossy.links().size(), layer.links().size());
  EXPECT_EQ(lossy.graph().edge_list(), layer.graph().edge_list());
  for (std::size_t i = 0; i < layer.links().size(); ++i) {
    EXPECT_DOUBLE_EQ(lossy.links()[i].probability,
                     0.75 * layer.links()[i].probability);
  }
  EXPECT_THROW(with_uniform_loss(layer, 1.0), InvalidArgument);
}

TEST(LinkLayer, SampleRealizedGraphDeterministicAndComplete) {
  const std::vector<Point2> pts = seed_placement(431, 100);
  const LinkLayer certain = build_link_layer(pts, UnitDiskModel(13.0));

  // All-certain links: every sample is the full graph.
  Rng rng_a(5);
  EXPECT_EQ(sample_realized_graph(certain, rng_a).edge_list(),
            certain.graph().edge_list());

  // Lossy links: same seed => same sample; the sample is a subgraph.
  const LinkLayer lossy = with_uniform_loss(certain, 0.5);
  Rng rng_b(5), rng_c(5);
  const Graph s1 = sample_realized_graph(lossy, rng_b);
  const Graph s2 = sample_realized_graph(lossy, rng_c);
  EXPECT_EQ(s1.edge_list(), s2.edge_list());
  EXPECT_LT(s1.num_edges(), certain.graph().num_edges());
  for (const auto& [u, v] : s1.edge_list()) {
    EXPECT_TRUE(certain.graph().has_edge(u, v));
  }
}

TEST(AdHocNetwork, LinkModelRebuildMatchesLegacyRebuild) {
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  Rng rng(441);
  AdHocNetwork net = generate_network(cfg, rng);
  const Graph legacy = net.graph;

  const LinkLayer layer = rebuild_with_model(net, UnitDiskModel(net.radius));
  EXPECT_EQ(net.graph.edge_list(), legacy.edge_list());
  EXPECT_EQ(layer.graph().edge_list(), legacy.edge_list());
  EXPECT_DOUBLE_EQ(layer.mean_probability(), 1.0);

  // Log-normal at r_half = radius keeps every unit-disk link (p >= 0.5
  // inside the radius) and adds gray-zone links beyond it.
  LogNormalShadowingModel::Params params;
  params.r_half = net.radius;
  const LinkLayer shadow =
      rebuild_with_model(net, LogNormalShadowingModel(params));
  EXPECT_GE(shadow.graph().num_edges(), legacy.num_edges());
  for (const auto& [u, v] : legacy.edge_list()) {
    EXPECT_TRUE(net.graph.has_edge(u, v));
  }
  net.rebuild_graph();
  EXPECT_EQ(net.graph.edge_list(), legacy.edge_list());
}

}  // namespace
}  // namespace khop
